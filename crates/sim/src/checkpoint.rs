//! Deterministic run checkpointing: capture, `RSNP1` encoding, and the
//! on-disk checkpoint rotation.
//!
//! A [`Snapshot`] is the complete deterministic state of a run at a
//! *quiescent point* of the event loop — the top of the loop with every
//! batched drive committed (serial engine) or every shard queue drained
//! (sharded director). Captured state:
//!
//! * the pending [`EventQueue`] in drain order,
//! * the world: packet arena columns, per-node buffers (including each
//!   buffer's destination intern order, which is protocol-observable),
//!   delivery stamps and entered flags (holder sets are rebuilt from
//!   buffer membership — they are exactly the replica locations),
//! * the noise RNG cursor ([`rand::rngs::StdRng::state`]),
//! * source positions by *count*: how many windows/packets were pulled,
//!   plus the lookahead item each source has already yielded. Sources are
//!   deterministic generators or files, so a resume re-pulls the same
//!   prefix from a fresh source and asserts the lookahead item matches —
//!   an end-to-end integrity check that the scenario inputs did not
//!   change between save and resume,
//! * report counters accumulated so far,
//! * the routing protocol's opaque state ([`Routing::save_state`]), when
//!   it has any.
//!
//! Restoring a snapshot and running to completion is byte-identical to
//! the uninterrupted run — at any `RAPID_SHARDS` / `RAPID_INTRA_JOBS`,
//! because the snapshot holds only the serial-order state that both
//! runtimes agree on (see `crate::par` and `crate::shard` for why the
//! parallel schedules commute).
//!
//! The [`Checkpointer`] writes rotating `ckpt-<seq>.rsnp` files
//! (tmp-write + rename so a crash mid-write never clobbers the previous
//! good snapshot), keeps the newest `keep`, and [`load_latest`] walks
//! newest→oldest past corrupt files — every skip loudly reported through
//! [`crate::diag`] — so one damaged file degrades to the previous
//! snapshot instead of a dead run.

use crate::contact::ContactWindow;
use crate::event::{EventQueue, SimEvent};
use crate::fault::{corrupt_file, FaultPlan};
use crate::ids::IndexSet;
use crate::par::ContactConcurrency;
use crate::routing::{PacketStore, Routing, SimConfig};
use crate::time::{Time, TimeDelta};
use crate::types::{NodeId, PacketId};
use crate::workload::PacketSpec;
use crate::NodeBuffer;
use dtn_trace::{write_varint, ByteCursor, SnapshotReader, SnapshotWriter, WireError};
use std::path::{Path, PathBuf};

/// One packet's arena row (the SoA columns of [`PacketStore`], by value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Creation instant.
    pub created_at: Time,
    /// Expiry instant, or [`PacketStore::NO_TTL`].
    pub ttl_deadline: Time,
}

/// One node buffer's contents: the destination intern order (observable
/// through [`NodeBuffer::queues`], so it must survive a round trip) and
/// the stored replicas with their arrival stamps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BufferSnap {
    /// Destinations in first-seen order, including drained ones.
    pub dsts: Vec<NodeId>,
    /// `(packet, stored_at)` in `PacketId` order.
    pub entries: Vec<(PacketId, Time)>,
}

/// A durative window that was open at capture time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSnap {
    /// The window's pull-order index.
    pub idx: u64,
    /// The window itself.
    pub window: ContactWindow,
    /// Setup-loss bytes drawn when it opened.
    pub loss: u64,
}

/// The run's scalar report counters (everything in `SimReport` that is
/// accumulated rather than derived at the end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Contacts that took place.
    pub contacts: u64,
    /// Contacts lost to noise.
    pub contacts_failed: u64,
    /// Windows suppressed by churn.
    pub contacts_suppressed: u64,
    /// TTL expiries.
    pub expired: u64,
    /// Offered opportunity bytes.
    pub offered_bytes: u64,
    /// Payload bytes moved.
    pub data_bytes: u64,
    /// Control bytes moved.
    pub metadata_bytes: u64,
    /// Replications performed.
    pub replications: u64,
}

/// The routing protocol's saved state with the protocol name that wrote
/// it (checked on restore, so a Rapid snapshot never silently restores
/// into Epidemic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingState {
    /// [`Routing::name`] of the saving protocol.
    pub name: String,
    /// Opaque [`Routing::save_state`] payload.
    pub bytes: Vec<u8>,
}

/// The complete deterministic state of a run at a quiescent point.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Digest of the behavioral `SimConfig` fields (see [`config_digest`]);
    /// a resume under a different scenario configuration is refused.
    pub config_digest: u64,
    /// The `(time)` of the next event — where the run will resume.
    pub now: Time,
    /// Contact windows fully processed (the engine's `next_window_idx`).
    pub windows_consumed: u64,
    /// Contact sequence counter (drive order / RNG substream basis).
    pub contact_seq: u64,
    /// The contact source's already-pulled lookahead item.
    pub next_window: Option<ContactWindow>,
    /// The workload source's already-pulled lookahead item.
    pub next_packet: Option<PacketSpec>,
    /// Noise RNG cursor.
    pub noise_rng: [u64; 4],
    /// Pending events in drain order.
    pub events: Vec<(Time, SimEvent)>,
    /// Packet arena rows in id order (count doubles as the number of
    /// workload specs consumed).
    pub packets: Vec<PacketRow>,
    /// Per-packet delivery stamps.
    pub delivered_at: Vec<Option<Time>>,
    /// Per-packet entered-the-network flags.
    pub entered: Vec<bool>,
    /// Per-node buffer contents.
    pub buffers: Vec<BufferSnap>,
    /// Per-node availability (churn state).
    pub up: Vec<bool>,
    /// Durative windows open at capture.
    pub open: Vec<OpenSnap>,
    /// Report counters accumulated so far.
    pub counters: Counters,
    /// Routing protocol state, when the protocol carries any.
    pub routing: Option<RoutingState>,
}

/// FNV-1a over the behavioral `SimConfig` fields — everything that
/// changes results. `intra_jobs` and `lookahead` are deliberately
/// excluded: they only change the parallel schedule, which is
/// byte-identical by construction, so a snapshot taken at one
/// `RAPID_INTRA_JOBS` restores under another.
pub fn config_digest(config: &SimConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(config.nodes as u64);
    h.u64(config.buffer_capacity);
    h.u64(config.deadline.map_or(u64::MAX, |d| d.0));
    h.u64(config.horizon.0);
    h.u64(config.ttl.map_or(u64::MAX, |t| t.0));
    h.u64(config.allow_global_knowledge as u64);
    h.u64(config.seed);
    h.u64(config.measure_from.0);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Whether `routing` can participate in checkpointed runs: it either
/// saves real state, or promises it has none to save
/// ([`ContactConcurrency::Stateless`] — every decision is a pure function
/// of the configuration and the contact at hand, so a fresh instance
/// resumes exactly).
pub fn routing_checkpointable(routing: &dyn Routing) -> bool {
    routing.save_state().is_some() || routing.contact_concurrency() == ContactConcurrency::Stateless
}

/// Panics with a descriptive message if `routing` cannot be checkpointed.
/// Called up front by the hooked runtimes, so a stateful protocol without
/// [`Routing::save_state`] fails loudly at configuration time instead of
/// resuming from silently-wrong state hours later.
pub fn require_checkpointable(routing: &dyn Routing) {
    assert!(
        routing_checkpointable(routing),
        "{} keeps protocol state but implements neither save_state/load_state \
         nor the Stateless contract; checkpointed runs would resume from \
         wrong state [diag=not-checkpointable proto={}]",
        routing.name(),
        routing.name(),
    );
}

// --- wire encoding ---------------------------------------------------------

fn put_bits(out: &mut Vec<u8>, bits: &[bool]) {
    write_varint(out, bits.len() as u64);
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        byte |= (b as u8) << (i % 8);
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

fn put_window(out: &mut Vec<u8>, w: &ContactWindow) {
    write_varint(out, w.start.0);
    write_varint(out, w.end.0);
    write_varint(out, w.a.0 as u64);
    write_varint(out, w.b.0 as u64);
    write_varint(out, w.bytes_per_sec);
    write_varint(out, w.lump_bytes);
}

/// Section-scoped cursor: every wire error names its section and offset.
struct Section<'a> {
    name: &'static str,
    cur: ByteCursor<'a>,
}

impl<'a> Section<'a> {
    fn new(reader: &SnapshotReader<'a>, name: &'static str) -> Result<Self, String> {
        let payload = reader.require(name).map_err(|e| e.to_string())?;
        Ok(Self {
            name,
            cur: ByteCursor::new(payload),
        })
    }

    fn fail(&self, e: WireError) -> String {
        format!("snapshot section `{}`: {e}", self.name)
    }

    fn varint(&mut self) -> Result<u64, String> {
        self.cur.varint().map_err(|e| self.fail(e))
    }

    fn time(&mut self) -> Result<Time, String> {
        Ok(Time(self.varint()?))
    }

    fn node(&mut self) -> Result<NodeId, String> {
        let v = self.varint()?;
        u32::try_from(v).map(NodeId).map_err(|_| {
            format!(
                "snapshot section `{}`: node id {v} overflows u32",
                self.name
            )
        })
    }

    fn byte(&mut self) -> Result<u8, String> {
        self.cur.byte().map_err(|e| self.fail(e))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        self.cur.take(n).map_err(|e| self.fail(e))
    }

    fn bits(&mut self) -> Result<Vec<bool>, String> {
        let n = self.varint()? as usize;
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    fn window(&mut self) -> Result<ContactWindow, String> {
        let (start, end) = (self.time()?, self.time()?);
        let (a, b) = (self.node()?, self.node()?);
        let (bytes_per_sec, lump_bytes) = (self.varint()?, self.varint()?);
        Ok(ContactWindow {
            start,
            end,
            a,
            b,
            bytes_per_sec,
            lump_bytes,
        })
    }

    fn done(self) -> Result<(), String> {
        if self.cur.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "snapshot section `{}`: {} trailing bytes at offset {}",
                self.name,
                self.cur.remaining(),
                self.cur.offset()
            ))
        }
    }
}

impl Snapshot {
    /// Serializes into the `RSNP1` container.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();

        let mut meta = Vec::new();
        write_varint(&mut meta, self.config_digest);
        write_varint(&mut meta, self.now.0);
        write_varint(&mut meta, self.windows_consumed);
        write_varint(&mut meta, self.contact_seq);
        meta.push(self.next_window.is_some() as u8);
        if let Some(win) = &self.next_window {
            put_window(&mut meta, win);
        }
        meta.push(self.next_packet.is_some() as u8);
        if let Some(s) = &self.next_packet {
            write_varint(&mut meta, s.time.0);
            write_varint(&mut meta, s.src.0 as u64);
            write_varint(&mut meta, s.dst.0 as u64);
            write_varint(&mut meta, s.size_bytes);
        }
        w.section("meta", &meta);

        let mut rng = Vec::with_capacity(32);
        for word in self.noise_rng {
            rng.extend_from_slice(&word.to_le_bytes());
        }
        w.section("rng", &rng);

        let mut queue = Vec::new();
        write_varint(&mut queue, self.events.len() as u64);
        for (t, ev) in &self.events {
            write_varint(&mut queue, t.0);
            let (tag, arg) = match ev {
                SimEvent::NodeUp(n) => (0u8, n.0 as u64),
                SimEvent::PacketExpired(p) => (1, p.0 as u64),
                SimEvent::ContactEnd(i) => (2, *i as u64),
                SimEvent::ContactStart(i) => (3, *i as u64),
                SimEvent::PacketCreated(i) => (4, *i as u64),
                SimEvent::NodeDown(n) => (5, n.0 as u64),
            };
            queue.push(tag);
            write_varint(&mut queue, arg);
        }
        w.section("queue", &queue);

        let mut packets = Vec::new();
        write_varint(&mut packets, self.packets.len() as u64);
        for p in &self.packets {
            write_varint(&mut packets, p.src.0 as u64);
            write_varint(&mut packets, p.dst.0 as u64);
            write_varint(&mut packets, p.size_bytes);
            write_varint(&mut packets, p.created_at.0);
            // TTL as an offset from creation, 0 = no TTL: a varint byte or
            // two instead of ten for the NO_TTL sentinel.
            let ttl = if p.ttl_deadline == PacketStore::NO_TTL {
                0
            } else {
                p.ttl_deadline.0 - p.created_at.0 + 1
            };
            write_varint(&mut packets, ttl);
        }
        w.section("packets", &packets);

        let mut status = Vec::new();
        put_bits(&mut status, &self.entered);
        let delivered: Vec<bool> = self.delivered_at.iter().map(|d| d.is_some()).collect();
        put_bits(&mut status, &delivered);
        for t in self.delivered_at.iter().flatten() {
            write_varint(&mut status, t.0);
        }
        w.section("status", &status);

        let mut buffers = Vec::new();
        write_varint(&mut buffers, self.buffers.len() as u64);
        for b in &self.buffers {
            write_varint(&mut buffers, b.dsts.len() as u64);
            for d in &b.dsts {
                write_varint(&mut buffers, d.0 as u64);
            }
            write_varint(&mut buffers, b.entries.len() as u64);
            for (id, stored_at) in &b.entries {
                write_varint(&mut buffers, id.0 as u64);
                write_varint(&mut buffers, stored_at.0);
            }
        }
        w.section("buffers", &buffers);

        let mut avail = Vec::new();
        put_bits(&mut avail, &self.up);
        write_varint(&mut avail, self.open.len() as u64);
        for o in &self.open {
            write_varint(&mut avail, o.idx);
            put_window(&mut avail, &o.window);
            write_varint(&mut avail, o.loss);
        }
        w.section("avail", &avail);

        let mut report = Vec::new();
        let c = &self.counters;
        for v in [
            c.contacts,
            c.contacts_failed,
            c.contacts_suppressed,
            c.expired,
            c.offered_bytes,
            c.data_bytes,
            c.metadata_bytes,
            c.replications,
        ] {
            write_varint(&mut report, v);
        }
        w.section("report", &report);

        if let Some(r) = &self.routing {
            let mut routing = Vec::new();
            write_varint(&mut routing, r.name.len() as u64);
            routing.extend_from_slice(r.name.as_bytes());
            routing.extend_from_slice(&r.bytes);
            w.section("routing", &routing);
        }

        w.finish()
    }

    /// Decodes an `RSNP1` snapshot; every failure mode (bad magic,
    /// truncation, checksum, malformed section) yields a descriptive
    /// error naming the section and offset.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let reader = SnapshotReader::new(bytes).map_err(|e| e.to_string())?;

        let mut meta = Section::new(&reader, "meta")?;
        let config_digest = meta.varint()?;
        let now = meta.time()?;
        let windows_consumed = meta.varint()?;
        let contact_seq = meta.varint()?;
        let next_window = match meta.byte()? {
            0 => None,
            _ => Some(meta.window()?),
        };
        let next_packet = match meta.byte()? {
            0 => None,
            _ => Some(PacketSpec {
                time: meta.time()?,
                src: meta.node()?,
                dst: meta.node()?,
                size_bytes: meta.varint()?,
            }),
        };
        meta.done()?;

        let mut rng = Section::new(&reader, "rng")?;
        let words = rng.take(32)?;
        let mut noise_rng = [0u64; 4];
        for (i, chunk) in words.chunks_exact(8).enumerate() {
            noise_rng[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        rng.done()?;

        let mut queue = Section::new(&reader, "queue")?;
        let n_events = queue.varint()? as usize;
        let mut events = Vec::with_capacity(n_events.min(1 << 20));
        for _ in 0..n_events {
            let t = queue.time()?;
            let tag = queue.byte()?;
            let arg = queue.varint()?;
            let id32 = |v: u64| -> Result<u32, String> {
                u32::try_from(v).map_err(|_| format!("snapshot section `queue`: id {v} overflows"))
            };
            let ev = match tag {
                0 => SimEvent::NodeUp(NodeId(id32(arg)?)),
                1 => SimEvent::PacketExpired(PacketId(id32(arg)?)),
                2 => SimEvent::ContactEnd(arg as usize),
                3 => SimEvent::ContactStart(arg as usize),
                4 => SimEvent::PacketCreated(arg as usize),
                5 => SimEvent::NodeDown(NodeId(id32(arg)?)),
                other => {
                    return Err(format!(
                        "snapshot section `queue`: unknown event tag {other}"
                    ))
                }
            };
            events.push((t, ev));
        }
        queue.done()?;

        let mut pk = Section::new(&reader, "packets")?;
        let n_packets = pk.varint()? as usize;
        let mut packets = Vec::with_capacity(n_packets.min(1 << 20));
        for _ in 0..n_packets {
            let src = pk.node()?;
            let dst = pk.node()?;
            let size_bytes = pk.varint()?;
            let created_at = pk.time()?;
            let ttl = pk.varint()?;
            let ttl_deadline = if ttl == 0 {
                PacketStore::NO_TTL
            } else {
                Time(created_at.0 + ttl - 1)
            };
            packets.push(PacketRow {
                src,
                dst,
                size_bytes,
                created_at,
                ttl_deadline,
            });
        }
        pk.done()?;

        let mut status = Section::new(&reader, "status")?;
        let entered = status.bits()?;
        let delivered = status.bits()?;
        if entered.len() != packets.len() || delivered.len() != packets.len() {
            return Err(format!(
                "snapshot section `status`: {} entered / {} delivered flags for {} packets",
                entered.len(),
                delivered.len(),
                packets.len()
            ));
        }
        let mut delivered_at = Vec::with_capacity(delivered.len());
        for d in delivered {
            delivered_at.push(if d { Some(status.time()?) } else { None });
        }
        status.done()?;

        let mut bufs = Section::new(&reader, "buffers")?;
        let n_buffers = bufs.varint()? as usize;
        let mut buffers = Vec::with_capacity(n_buffers.min(1 << 20));
        for _ in 0..n_buffers {
            let n_dsts = bufs.varint()? as usize;
            let mut dsts = Vec::with_capacity(n_dsts.min(1 << 16));
            for _ in 0..n_dsts {
                dsts.push(bufs.node()?);
            }
            let n_entries = bufs.varint()? as usize;
            let mut entries = Vec::with_capacity(n_entries.min(1 << 16));
            for _ in 0..n_entries {
                let id = bufs.varint()?;
                let id = u32::try_from(id)
                    .map_err(|_| format!("snapshot section `buffers`: packet id {id} overflows"))?;
                entries.push((PacketId(id), bufs.time()?));
            }
            buffers.push(BufferSnap { dsts, entries });
        }
        bufs.done()?;

        let mut avail = Section::new(&reader, "avail")?;
        let up = avail.bits()?;
        let n_open = avail.varint()? as usize;
        let mut open = Vec::with_capacity(n_open.min(1 << 16));
        for _ in 0..n_open {
            let idx = avail.varint()?;
            let window = avail.window()?;
            let loss = avail.varint()?;
            open.push(OpenSnap { idx, window, loss });
        }
        avail.done()?;

        let mut rep = Section::new(&reader, "report")?;
        let counters = Counters {
            contacts: rep.varint()?,
            contacts_failed: rep.varint()?,
            contacts_suppressed: rep.varint()?,
            expired: rep.varint()?,
            offered_bytes: rep.varint()?,
            data_bytes: rep.varint()?,
            metadata_bytes: rep.varint()?,
            replications: rep.varint()?,
        };
        rep.done()?;

        let routing = match reader.section("routing") {
            None => None,
            Some(payload) => {
                let mut cur = ByteCursor::new(payload);
                let fail = |e: WireError| format!("snapshot section `routing`: {e}");
                let name_len = cur.varint().map_err(fail)? as usize;
                let name = std::str::from_utf8(cur.take(name_len).map_err(fail)?)
                    .map_err(|_| "snapshot section `routing`: non-UTF-8 protocol name".to_string())?
                    .to_string();
                let bytes = cur.take(cur.remaining()).map_err(fail)?.to_vec();
                Some(RoutingState { name, bytes })
            }
        };

        Ok(Self {
            config_digest,
            now,
            windows_consumed,
            contact_seq,
            next_window,
            next_packet,
            noise_rng,
            events,
            packets,
            delivered_at,
            entered,
            buffers,
            up,
            open,
            counters,
            routing,
        })
    }

    /// Rebuilds the packet arena from the captured rows.
    pub(crate) fn restore_store(&self) -> PacketStore {
        let mut store = PacketStore::default();
        for p in &self.packets {
            store.push(p.src, p.dst, p.size_bytes, p.created_at, p.ttl_deadline);
        }
        store
    }

    /// Rebuilds every node buffer and the holder table. Holder sets are
    /// exactly the replica locations, so they are derived from buffer
    /// membership rather than stored.
    pub(crate) fn restore_buffers(
        &self,
        capacity: u64,
        store: &PacketStore,
    ) -> (Vec<NodeBuffer>, Vec<IndexSet>) {
        let mut holders: Vec<IndexSet> = (0..store.len()).map(|_| IndexSet::new()).collect();
        let buffers = self
            .buffers
            .iter()
            .enumerate()
            .map(|(node, snap)| {
                let mut buf = NodeBuffer::new(capacity);
                buf.restore_interned_dsts(&snap.dsts);
                for &(id, stored_at) in &snap.entries {
                    let inserted = buf.insert(&store.get(id), stored_at);
                    assert!(inserted, "snapshot replica set exceeds buffer capacity");
                    holders[id.index()].insert(node);
                }
                buf
            })
            .collect();
        (buffers, holders)
    }

    /// Captures buffer contents (the inverse of [`Snapshot::restore_buffers`]).
    pub(crate) fn capture_buffers(buffers: &[NodeBuffer]) -> Vec<BufferSnap> {
        buffers
            .iter()
            .map(|b| BufferSnap {
                dsts: b.interned_dsts().to_vec(),
                entries: b.iter().map(|(id, meta)| (id, meta.stored_at)).collect(),
            })
            .collect()
    }

    /// Captures the packet arena (the inverse of [`Snapshot::restore_store`]).
    pub(crate) fn capture_store(store: &PacketStore) -> Vec<PacketRow> {
        store
            .iter()
            .map(|p| PacketRow {
                src: p.src,
                dst: p.dst,
                size_bytes: p.size_bytes,
                created_at: p.created_at,
                ttl_deadline: store.ttl_deadline(p.id).unwrap_or(PacketStore::NO_TTL),
            })
            .collect()
    }

    /// Rebuilds the event queue in the captured drain order.
    pub(crate) fn restore_queue(&self) -> EventQueue {
        EventQueue::from_events(self.events.iter().copied())
    }
}

// --- hooks & rotation ------------------------------------------------------

/// Optional crash-safety hooks threaded through the hooked run entry
/// points ([`crate::engine::run_streaming_hooked`],
/// [`crate::shard::run_sharded_hooked`]). The default is a plain run: no
/// checkpoints, no resume, no faults.
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Write rotating checkpoints during the run.
    pub checkpoint: Option<&'a mut Checkpointer>,
    /// Resume from this snapshot instead of starting fresh.
    pub resume: Option<Snapshot>,
    /// Inject faults from this plan.
    pub faults: Option<&'a mut FaultPlan>,
}

impl RunHooks<'_> {
    /// Whether any hook is set (used to skip the checkpointability check
    /// on plain runs).
    pub fn is_active(&self) -> bool {
        self.checkpoint.is_some() || self.resume.is_some() || self.faults.is_some()
    }
}

/// Writes rotating, sequence-numbered `RSNP1` checkpoint files at a fixed
/// simulated-time interval.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    every: TimeDelta,
    keep: usize,
    next_due: Time,
    seq: u64,
}

/// Filename for checkpoint `seq` (zero-padded so lexicographic order is
/// sequence order).
fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:010}.rsnp")
}

/// Parses a checkpoint sequence number back out of a directory entry.
fn checkpoint_seq(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".rsnp")?
        .parse()
        .ok()
}

impl Checkpointer {
    /// A checkpointer writing into `dir` (created if absent) every
    /// `every` of simulated time, keeping the newest `keep` files.
    /// Sequence numbers continue past any checkpoints already in `dir`,
    /// so a resumed run never overwrites the file it resumed from.
    pub fn new(dir: impl Into<PathBuf>, every: TimeDelta, keep: usize) -> std::io::Result<Self> {
        assert!(
            every > TimeDelta::ZERO,
            "checkpoint interval must be positive"
        );
        assert!(keep >= 1, "must keep at least one checkpoint");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let seq = list_checkpoints(&dir)?
            .last()
            .and_then(|p| checkpoint_seq(&p.file_name().unwrap_or_default().to_string_lossy()))
            .map_or(0, |s| s + 1);
        Ok(Self {
            dir,
            every,
            keep,
            next_due: Time::ZERO + every,
            seq,
        })
    }

    /// The directory checkpoints are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a checkpoint is due at simulated time `now`.
    pub fn due(&self, now: Time) -> bool {
        now >= self.next_due
    }

    /// Advances the schedule past `now` without saving — called on resume
    /// so the first event after restore does not immediately re-save the
    /// state just loaded.
    pub fn align(&mut self, now: Time) {
        while self.next_due <= now {
            self.next_due += self.every;
        }
    }

    /// Writes `snapshot` (tmp-write + rename), applies any injected
    /// corruption targeting this sequence number, prunes old files, and
    /// advances the schedule past `snapshot.now`.
    pub fn save(
        &mut self,
        snapshot: &Snapshot,
        faults: Option<&FaultPlan>,
    ) -> std::io::Result<PathBuf> {
        let seq = self.seq;
        self.seq += 1;
        self.align(snapshot.now);

        let path = self.dir.join(checkpoint_name(seq));
        let tmp = self.dir.join(format!("ckpt-{seq:010}.tmp"));
        std::fs::write(&tmp, snapshot.encode())?;
        std::fs::rename(&tmp, &path)?;

        if let Some(mode) = faults.and_then(|f| f.corruption_for(seq)) {
            corrupt_file(&path, mode)?;
            crate::diag::warn(
                "fault-corrupt-snapshot",
                "injected corruption into checkpoint just written",
                &[
                    ("path", path.display().to_string()),
                    ("seq", seq.to_string()),
                    ("mode", format!("{mode:?}")),
                ],
            );
        }

        // Prune: keep the newest `keep` checkpoints.
        let all = list_checkpoints(&self.dir)?;
        if all.len() > self.keep {
            for old in &all[..all.len() - self.keep] {
                let _ = std::fs::remove_file(old);
            }
        }
        Ok(path)
    }
}

/// All checkpoint files in `dir`, oldest first.
fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| checkpoint_seq(&n.to_string_lossy()).is_some())
                .unwrap_or(false)
        })
        .collect();
    files.sort();
    Ok(files)
}

/// A successfully loaded latest-good snapshot, with the corrupt newer
/// files that were skipped to reach it.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The file the snapshot came from.
    pub path: PathBuf,
    /// The decoded snapshot.
    pub snapshot: Snapshot,
    /// Newer files that failed to decode, with their errors (also warned
    /// through [`crate::diag`]).
    pub skipped: Vec<(PathBuf, String)>,
}

/// Loads the newest decodable snapshot from `dir`, walking newest→oldest
/// past corrupt files. Every skipped file is reported via
/// [`crate::diag::warn`] with `diag=snapshot-skipped`. Returns `Ok(None)`
/// when the directory holds no loadable checkpoint at all.
pub fn load_latest(dir: &Path) -> std::io::Result<Option<LoadedSnapshot>> {
    let mut skipped = Vec::new();
    for path in list_checkpoints(dir)?.into_iter().rev() {
        match std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|b| Snapshot::decode(&b))
        {
            Ok(snapshot) => {
                return Ok(Some(LoadedSnapshot {
                    path,
                    snapshot,
                    skipped,
                }))
            }
            Err(err) => {
                crate::diag::warn(
                    "snapshot-skipped",
                    "checkpoint failed to load; falling back to the previous one",
                    &[
                        ("path", path.display().to_string()),
                        ("error", format!("{err:?}")),
                    ],
                );
                skipped.push((path, err));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CorruptMode, Fault};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rapid-ckpt-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            config_digest: 0xDEAD_BEEF,
            now: Time::from_secs(120),
            windows_consumed: 42,
            contact_seq: 17,
            next_window: Some(ContactWindow::new(
                Time::from_secs(130),
                Time::from_secs(140),
                NodeId(3),
                NodeId(4),
                64,
            )),
            next_packet: Some(PacketSpec {
                time: Time::from_secs(125),
                src: NodeId(1),
                dst: NodeId(2),
                size_bytes: 512,
            }),
            noise_rng: [1, 2, 3, u64::MAX],
            events: vec![
                (Time::from_secs(121), SimEvent::PacketExpired(PacketId(0))),
                (Time::from_secs(122), SimEvent::ContactEnd(9)),
                (Time::from_secs(123), SimEvent::NodeDown(NodeId(5))),
                (Time::from_secs(124), SimEvent::NodeUp(NodeId(5))),
            ],
            packets: vec![
                PacketRow {
                    src: NodeId(0),
                    dst: NodeId(1),
                    size_bytes: 1024,
                    created_at: Time::from_secs(10),
                    ttl_deadline: Time::from_secs(70),
                },
                PacketRow {
                    src: NodeId(2),
                    dst: NodeId(0),
                    size_bytes: 2048,
                    created_at: Time::from_secs(20),
                    ttl_deadline: PacketStore::NO_TTL,
                },
            ],
            delivered_at: vec![Some(Time::from_secs(55)), None],
            entered: vec![true, true],
            buffers: vec![
                BufferSnap {
                    dsts: vec![NodeId(1), NodeId(0)],
                    entries: vec![(PacketId(1), Time::from_secs(21))],
                },
                BufferSnap::default(),
            ],
            up: vec![true, false, true],
            open: vec![OpenSnap {
                idx: 40,
                window: ContactWindow::new(
                    Time::from_secs(119),
                    Time::from_secs(150),
                    NodeId(0),
                    NodeId(2),
                    100,
                ),
                loss: 7,
            }],
            counters: Counters {
                contacts: 10,
                contacts_failed: 1,
                contacts_suppressed: 2,
                expired: 3,
                offered_bytes: 4096,
                data_bytes: 2048,
                metadata_bytes: 99,
                replications: 5,
            },
            routing: Some(RoutingState {
                name: "rapid".into(),
                bytes: vec![9, 8, 7],
            }),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_without_routing_round_trips() {
        let mut snap = sample_snapshot();
        snap.routing = None;
        let back = Snapshot::decode(&snap.encode()).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn every_corruption_is_detected_or_decodes_equal() {
        // Bit flips anywhere must either fail to decode (CRC) — they can
        // never decode into a *different* snapshot.
        let snap = sample_snapshot();
        let bytes = snap.encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x20;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for len in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..len]).is_err(),
                "truncation to {len} went undetected"
            );
        }
    }

    #[test]
    fn config_digest_tracks_behavioral_fields_only() {
        let base = SimConfig {
            nodes: 10,
            seed: 7,
            ..SimConfig::default()
        };
        let same = SimConfig {
            intra_jobs: 8,
            ..base.clone()
        };
        assert_eq!(
            config_digest(&base),
            config_digest(&same),
            "intra_jobs must not change the digest"
        );
        let different = SimConfig {
            seed: 8,
            ..base.clone()
        };
        assert_ne!(config_digest(&base), config_digest(&different));
    }

    #[test]
    fn checkpointer_rotates_and_load_latest_returns_newest() {
        let dir = temp_dir("rotate");
        let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(10), 2).unwrap();
        assert!(!ckpt.due(Time::from_secs(9)));
        assert!(ckpt.due(Time::from_secs(10)));

        for secs in [10u64, 20, 30] {
            let mut snap = sample_snapshot();
            snap.now = Time::from_secs(secs);
            snap.contact_seq = secs;
            ckpt.save(&snap, None).unwrap();
            assert!(!ckpt.due(snap.now), "save advances the schedule");
        }
        let files = list_checkpoints(&dir).unwrap();
        assert_eq!(files.len(), 2, "keep=2 prunes the oldest");

        let loaded = load_latest(&dir).unwrap().expect("snapshots exist");
        assert_eq!(loaded.snapshot.now, Time::from_secs(30));
        assert!(loaded.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(10), 3).unwrap();
        let mut good = sample_snapshot();
        good.now = Time::from_secs(10);
        ckpt.save(&good, None).unwrap();

        // The second save is corrupted by an injected fault.
        let faults = FaultPlan::scheduled(vec![Fault::CorruptSnapshot {
            seq: 1,
            mode: CorruptMode::BitFlip,
        }]);
        let mut bad = sample_snapshot();
        bad.now = Time::from_secs(20);
        ckpt.save(&bad, Some(&faults)).unwrap();

        let loaded = load_latest(&dir).unwrap().expect("previous survives");
        assert_eq!(loaded.snapshot.now, Time::from_secs(10), "fell back");
        assert_eq!(loaded.skipped.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_newest_falls_back_too() {
        let dir = temp_dir("truncate");
        let mut ckpt = Checkpointer::new(&dir, TimeDelta::from_secs(10), 3).unwrap();
        let mut a = sample_snapshot();
        a.now = Time::from_secs(10);
        ckpt.save(&a, None).unwrap();
        let faults = FaultPlan::scheduled(vec![Fault::CorruptSnapshot {
            seq: 1,
            mode: CorruptMode::Truncate,
        }]);
        let mut b = sample_snapshot();
        b.now = Time::from_secs(20);
        ckpt.save(&b, Some(&faults)).unwrap();
        let loaded = load_latest(&dir).unwrap().expect("previous survives");
        assert_eq!(loaded.snapshot.now, Time::from_secs(10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_all_corrupt_dir_yields_none() {
        let dir = temp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::write(dir.join(checkpoint_name(0)), b"garbage").unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_continues_past_existing_checkpoints() {
        let dir = temp_dir("seq");
        let mut first = Checkpointer::new(&dir, TimeDelta::from_secs(10), 5).unwrap();
        let snap = sample_snapshot();
        let p0 = first.save(&snap, None).unwrap();
        let second = Checkpointer::new(&dir, TimeDelta::from_secs(10), 5).unwrap();
        assert_eq!(second.seq, 1, "resumed checkpointer continues the sequence");
        assert!(p0.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
