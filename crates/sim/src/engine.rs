//! The discrete-event simulation engine.
//!
//! Mirrors the paper's evaluation vehicle (§5.3) — "The simulator takes as
//! input a schedule of node meetings, the bandwidth available at each
//! meeting, and a routing algorithm" — generalized into a typed
//! discrete-event core. A single deterministic [`EventQueue`] drains
//! [`SimEvent`]s (contact window open/close, packet creation, TTL expiry,
//! node churn) in the documented tie-break order; at each driven contact the
//! routing protocol moves packets through a [`ContactDriver`] that enforces
//! the feasibility rules of §3.1.
//!
//! Contact windows ([`crate::contact::ContactWindow`]) are durative: the
//! protocol is driven when a window *closes* (or is interrupted by churn),
//! with the per-direction budget the link accrued while open. The paper's
//! instantaneous meeting is the degenerate zero-duration window, driven
//! immediately at its start with its lump opportunity — which reproduces the
//! seed engine's behaviour byte-for-byte for instantaneous schedules. Runs
//! are deterministic given the configuration seed.

use crate::checkpoint::{
    config_digest, require_checkpointable, Counters, OpenSnap, RoutingState, RunHooks, Snapshot,
};
use crate::contact::{ContactWindow, Schedule};
use crate::driver::{ContactDriver, HolderOp, WorldMut};
use crate::event::{EventQueue, NodeEvent, SimEvent, WindowIdx};
use crate::ids::IndexSet;
use crate::noise::NoiseModel;
use crate::par::{Batcher, ContactPool, PendingDrive, RawSlice, SlicePartition};
use crate::report::SimReport;
use crate::routing::{PacketStore, Routing, SimConfig};
use crate::source::{ContactSource, WorkloadSource};
use crate::time::{Time, TimeDelta};
use crate::NodeBuffer;
use dtn_stats::sample::Exponential;
use dtn_stats::stream;
use rand::Rng;

/// Reusable storage for the batch flush loop: the drained ready set, the
/// per-flush driver list, and a pool of holder-op log vectors — all
/// recycled across flushes so steady-state batch execution allocates
/// nothing.
#[derive(Default)]
struct FlushScratch {
    /// The ready set drained from the batcher (capacity ping-pongs with
    /// the batcher's internal vector).
    ready: Vec<PendingDrive>,
    /// The driver list's raw allocation, parked between flushes. The
    /// `'static` here is nominal: the vector is always empty outside
    /// `execute_ready`, which re-tags the lifetime via
    /// [`recycle_drivers`].
    drivers: Vec<ContactDriver<'static>>,
    /// Holder-op logs returned by committed drivers, cleared for reuse.
    logs: Vec<Vec<HolderOp>>,
}

/// Re-tags the lifetime parameter of an *empty* driver vector so its
/// allocation can be reused for the next flush's borrows.
fn recycle_drivers<'b>(v: Vec<ContactDriver<'_>>) -> Vec<ContactDriver<'b>> {
    assert!(v.is_empty(), "only an empty driver vec can change lifetime");
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, cap) = (v.as_mut_ptr(), v.capacity());
    // SAFETY: the vector is empty, so no value of the old lifetime
    // survives; only the raw allocation is reused, and types differing
    // solely in lifetime parameters share one layout.
    unsafe { Vec::from_raw_parts(ptr.cast::<ContactDriver<'b>>(), 0, cap) }
}

/// A fully specified simulation run: configuration, contact-window schedule,
/// packet workload and (optionally) node churn.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    schedule: Schedule,
    workload: crate::workload::Workload,
    noise: Option<NoiseModel>,
    churn: Vec<NodeEvent>,
}

impl Simulation {
    /// Assembles a run and validates that every node id referenced by the
    /// schedule or workload is below `config.nodes`.
    pub fn new(config: SimConfig, schedule: Schedule, workload: crate::workload::Workload) -> Self {
        let n = config.nodes;
        for w in schedule.windows() {
            assert!(
                w.a.index() < n && w.b.index() < n,
                "contact references node outside 0..{n}"
            );
        }
        for s in workload.specs() {
            assert!(
                s.src.index() < n && s.dst.index() < n,
                "packet references node outside 0..{n}"
            );
        }
        Self {
            config,
            schedule,
            workload,
            noise: None,
            churn: Vec::new(),
        }
    }

    /// Enables deployment-noise emulation for this run (§5, Fig. 3).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Adds node churn: availability transitions that interrupt active
    /// contact windows and suppress new ones while a node is down. All
    /// nodes start up; buffers are retained across downtime (a parked bus
    /// keeps its disk).
    pub fn with_churn(mut self, churn: Vec<NodeEvent>) -> Self {
        let n = self.config.nodes;
        for ev in &churn {
            assert!(ev.node.index() < n, "churn references node outside 0..{n}");
        }
        self.churn = churn;
        self
    }

    /// The run's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The meeting schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The packet workload.
    pub fn workload(&self) -> &crate::workload::Workload {
        &self.workload
    }

    /// The node churn events.
    pub fn churn(&self) -> &[NodeEvent] {
        &self.churn
    }

    /// Executes the run against `routing` and returns the measured report.
    ///
    /// The engine owns all world state; the protocol only moves packets
    /// through the [`ContactDriver`]. Identical inputs (including
    /// `config.seed`) produce identical reports.
    ///
    /// This is the materialized convenience wrapper around
    /// [`run_streaming`]: the schedule and workload are streamed through
    /// borrowing cursors, reproducing the seed engine's drain order
    /// byte-for-byte.
    pub fn run(&self, routing: &mut dyn Routing) -> SimReport {
        let mut contacts = self.schedule.windows().iter().copied();
        let mut workload = self.workload.specs().iter().copied();
        run_streaming(
            &self.config,
            &mut contacts,
            &mut workload,
            &self.churn,
            self.noise,
            routing,
        )
    }
}

/// A durative window that is currently open, with its setup loss. The set
/// is kept in ascending window-index order (windows open in pull order).
struct OpenWindow {
    idx: WindowIdx,
    window: ContactWindow,
    loss: u64,
}

/// Executes one run by *pulling* contact windows and packet creations from
/// streaming sources — the scenario is never materialized, so peak memory
/// is bounded by the open state (buffers, in-flight packets, open windows),
/// not the contact-plan size.
///
/// The drain order is identical to seeding an [`EventQueue`] with the full
/// schedule and workload: the queue (churn, window closes, TTL expiries)
/// and the two sources are merged on the `(time, rank)` key of the event
/// tie-break table, and ranks are disjoint across the merged streams —
/// contact starts and creations only ever come from the sources, the other
/// kinds only from the queue. Within a stream, pull order preserves the
/// FIFO tie-break the seed engine's stable sorts guaranteed. The sources
/// must yield nondecreasing times and in-range node ids (asserted as
/// items are pulled).
///
/// Events scheduled past `config.horizon` still execute (the seed engine
/// processed every contact it was given); generators are expected to clamp
/// at the horizon.
///
/// # Intra-run parallelism
///
/// With `config.intra_jobs > 1`, on runs without global knowledge and for
/// protocols declaring [`crate::par::ContactConcurrency::NodeDisjoint`]
/// (or the stronger `Stateless`), the engine
/// layers a conservative parallel scheduler over the same drain order: it
/// scans ahead (bounded lookahead), greedily groups contact drives whose
/// node sets are pairwise disjoint, executes each group on a scoped
/// worker pool, and commits results in the scan order. Every non-contact
/// event is a barrier. Results are byte-identical to `intra_jobs = 1`
/// (the serial engine, and the default) — see [`crate::par`] for the
/// determinism argument.
pub fn run_streaming(
    config: &SimConfig,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    routing: &mut dyn Routing,
) -> SimReport {
    run_streaming_hooked(
        config,
        contacts,
        workload,
        churn,
        noise,
        routing,
        RunHooks::default(),
    )
}

/// [`run_streaming`] with crash-safety hooks: periodic checkpoints,
/// resume from a [`Snapshot`], and fault injection. A resumed run is
/// byte-identical to the uninterrupted run from the same inputs — the
/// snapshot holds the full serial-order state (see [`crate::checkpoint`]).
pub fn run_streaming_hooked(
    config: &SimConfig,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    routing: &mut dyn Routing,
    hooks: RunHooks<'_>,
) -> SimReport {
    if hooks.checkpoint.is_some() || hooks.resume.is_some() {
        require_checkpointable(routing);
    }
    let jobs = config.intra_jobs.max(1);
    let parallel = jobs > 1
        && !config.allow_global_knowledge
        && routing.contact_concurrency().is_node_disjoint();
    if parallel {
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, jobs);
            run_loop(
                config,
                contacts,
                workload,
                churn,
                noise,
                routing,
                Some(&pool),
                hooks,
            )
        })
    } else {
        run_loop(
            config, contacts, workload, churn, noise, routing, None, hooks,
        )
    }
}

/// The engine loop behind [`run_streaming`]; `pool` is `Some` only for
/// intra-run parallel execution.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    config: &SimConfig,
    contacts: &mut dyn ContactSource,
    workload: &mut dyn WorkloadSource,
    churn: &[NodeEvent],
    noise: Option<NoiseModel>,
    routing: &mut dyn Routing,
    pool: Option<&ContactPool>,
    mut hooks: RunHooks<'_>,
) -> SimReport {
    let n = config.nodes;
    let mut world = EngineWorld {
        buffers: (0..n)
            .map(|_| NodeBuffer::new(config.buffer_capacity))
            .collect(),
        store: PacketStore::default(),
        delivered_at: Vec::new(),
        holders: Vec::new(),
        entered: Vec::new(),
    };
    let mut noise_rng = stream(config.seed, "sim-noise");

    routing.on_init(config);

    // Only churn is seeded; window closes and TTL expiries are scheduled
    // as their windows open / packets enter. On a resume the snapshot's
    // queue already holds the remaining churn events, so churn is *not*
    // re-seeded.
    let mut queue = EventQueue::new();
    if hooks.resume.is_none() {
        for ev in churn {
            assert!(ev.node.index() < n, "churn references node outside 0..{n}");
            let event = if ev.up {
                SimEvent::NodeUp(ev.node)
            } else {
                SimEvent::NodeDown(ev.node)
            };
            queue.push(ev.time, event);
        }
    }

    let mut up = vec![true; n];
    let mut open: Vec<OpenWindow> = Vec::new();

    let mut report = SimReport {
        horizon: config.horizon,
        deadline: config.deadline,
        ..SimReport::default()
    };

    let pull_window = |contacts: &mut dyn ContactSource, last_start: &mut Time| {
        let w = contacts.next_window()?;
        assert!(
            w.a.index() < n && w.b.index() < n,
            "contact references node outside 0..{n}"
        );
        assert!(
            w.start >= *last_start,
            "contact source must yield nondecreasing start times"
        );
        *last_start = w.start;
        Some(w)
    };
    let pull_packet = |workload: &mut dyn WorkloadSource, last_time: &mut Time| {
        let s = workload.next_packet()?;
        assert!(
            s.src.index() < n && s.dst.index() < n,
            "packet references node outside 0..{n}"
        );
        assert!(
            s.time >= *last_time,
            "workload source must yield nondecreasing creation times"
        );
        *last_time = s.time;
        Some(s)
    };

    let mut last_window_start = Time::ZERO;
    let mut last_packet_time = Time::ZERO;
    let mut next_window_idx: WindowIdx = 0;
    let mut contact_seq: u64 = 0;
    let (mut next_window, mut next_packet);

    if let Some(snap) = hooks.resume.take() {
        assert_eq!(
            snap.config_digest,
            config_digest(config),
            "snapshot was taken under a different scenario configuration \
             [diag=resume-config-mismatch]"
        );
        // World state, verbatim from the snapshot.
        world.store = snap.restore_store();
        let (buffers, holders) = snap.restore_buffers(config.buffer_capacity, &world.store);
        world.buffers = buffers;
        world.holders = holders;
        world.delivered_at = snap.delivered_at.clone();
        world.entered = snap.entered.clone();
        queue = snap.restore_queue();
        assert_eq!(snap.up.len(), n, "snapshot node count mismatch");
        up = snap.up.clone();
        open = snap
            .open
            .iter()
            .map(|o| OpenWindow {
                idx: o.idx as WindowIdx,
                window: o.window,
                loss: o.loss,
            })
            .collect();
        noise_rng = rand::rngs::StdRng::from_state(snap.noise_rng);
        contact_seq = snap.contact_seq;
        let c = snap.counters;
        report.contacts = c.contacts;
        report.contacts_failed = c.contacts_failed;
        report.contacts_suppressed = c.contacts_suppressed;
        report.expired = c.expired;
        report.offered_bytes = c.offered_bytes;
        report.data_bytes = c.data_bytes;
        report.metadata_bytes = c.metadata_bytes;
        report.replications = c.replications;

        // Sources are replayed by count from the beginning (they are
        // deterministic), then the lookahead item each source had already
        // yielded is re-pulled and checked against the snapshot — a full
        // integrity check that the scenario inputs are the ones the
        // snapshot was taken from.
        for _ in 0..snap.windows_consumed {
            pull_window(contacts, &mut last_window_start)
                .expect("contact source ended before the snapshot's position");
        }
        next_window_idx = snap.windows_consumed as WindowIdx;
        next_window = pull_window(contacts, &mut last_window_start);
        assert_eq!(
            next_window, snap.next_window,
            "contact source diverged from the snapshot [diag=resume-source-mismatch]"
        );
        for _ in 0..snap.packets.len() {
            pull_packet(workload, &mut last_packet_time)
                .expect("workload source ended before the snapshot's position");
        }
        next_packet = pull_packet(workload, &mut last_packet_time);
        assert_eq!(
            next_packet, snap.next_packet,
            "workload source diverged from the snapshot [diag=resume-source-mismatch]"
        );

        // Protocol state. Stateless protocols have nothing to restore; a
        // fresh instance is exact by contract.
        if let Some(rs) = &snap.routing {
            assert_eq!(
                rs.name,
                routing.name(),
                "snapshot holds {} state but the run uses {} [diag=resume-proto-mismatch]",
                rs.name,
                routing.name()
            );
            routing
                .load_state(&rs.bytes)
                .unwrap_or_else(|e| panic!("protocol state restore failed: {e}"));
        }

        if let Some(faults) = hooks.faults.as_deref_mut() {
            faults.ack_crashes_before(snap.now);
        }
        if let Some(ckpt) = hooks.checkpoint.as_deref_mut() {
            ckpt.align(snap.now);
        }
    } else {
        next_window = pull_window(contacts, &mut last_window_start);
        next_packet = pull_packet(workload, &mut last_packet_time);
    }

    // Intra-run parallel state: the batch scheduler and the contact
    // sequence counter (assigned in scan = serial drive order; also what
    // randomized protocols derive their per-contact RNG substreams from).
    let mut batcher = pool.map(|_| Batcher::new(n, config.lookahead));
    let mut flush_scratch = FlushScratch::default();

    const START_RANK: u8 = 3; // SimEvent::ContactStart
    const CREATED_RANK: u8 = 4; // SimEvent::PacketCreated

    loop {
        // Three candidates for the earliest event; their (time, rank) keys
        // never collide across streams because the ranks are disjoint.
        let queue_key = queue.peek_key();
        let window_key = next_window.as_ref().map(|w| (w.start, START_RANK));
        let packet_key = next_packet.as_ref().map(|s| (s.time, CREATED_RANK));
        let best = [queue_key, window_key, packet_key]
            .into_iter()
            .flatten()
            .min();
        let Some(best) = best else { break };

        if let Some(faults) = hooks.faults.as_deref_mut() {
            faults.trip_crash(best.0);
        }
        if hooks.checkpoint.as_ref().is_some_and(|c| c.due(best.0)) {
            // The snapshot must be quiescent: commit pending batched
            // drives first (an early flush is byte-identical — see
            // `crate::par`).
            if let Some(batcher) = &mut batcher {
                flush_batches(
                    config,
                    routing,
                    &mut world,
                    &mut report,
                    pool.expect("batcher implies pool"),
                    batcher,
                    &mut flush_scratch,
                );
            }
            let snap = Snapshot {
                config_digest: config_digest(config),
                now: best.0,
                windows_consumed: next_window_idx as u64,
                contact_seq,
                next_window,
                next_packet,
                noise_rng: noise_rng.state(),
                events: queue.snapshot_events(),
                packets: Snapshot::capture_store(&world.store),
                delivered_at: world.delivered_at.clone(),
                entered: world.entered.clone(),
                buffers: Snapshot::capture_buffers(&world.buffers),
                up: up.clone(),
                open: open
                    .iter()
                    .map(|ow| OpenSnap {
                        idx: ow.idx as u64,
                        window: ow.window,
                        loss: ow.loss,
                    })
                    .collect(),
                counters: Counters {
                    contacts: report.contacts,
                    contacts_failed: report.contacts_failed,
                    contacts_suppressed: report.contacts_suppressed,
                    expired: report.expired,
                    offered_bytes: report.offered_bytes,
                    data_bytes: report.data_bytes,
                    metadata_bytes: report.metadata_bytes,
                    replications: report.replications,
                },
                routing: routing.save_state().map(|bytes| RoutingState {
                    name: routing.name(),
                    bytes,
                }),
            };
            let ckpt = hooks.checkpoint.as_deref_mut().expect("checked above");
            ckpt.save(&snap, hooks.faults.as_deref())
                .unwrap_or_else(|e| {
                    panic!("checkpoint write failed: {e} [diag=ckpt-write-failed]")
                });
        }

        if window_key == Some(best) {
            let w = next_window.take().expect("window candidate exists");
            let i = next_window_idx;
            next_window_idx += 1;
            next_window = pull_window(contacts, &mut last_window_start);
            let now = w.start;

            if !up[w.a.index()] || !up[w.b.index()] {
                // A window never starts while an endpoint is down (and does
                // not reopen if the node returns mid-span). Gated on the
                // measured span like the sibling contact counters.
                if now >= config.measure_from {
                    report.contacts_suppressed += 1;
                }
                continue;
            }
            let measured = now >= config.measure_from;
            let mut loss = 0u64;
            if let Some(noise) = &noise {
                if noise_rng.gen::<f64>() < noise.contact_failure_prob {
                    if measured {
                        report.contacts_failed += 1;
                    }
                    continue;
                }
                if noise.setup_loss_bytes_mean > 0.0 {
                    loss = Exponential::with_mean(noise.setup_loss_bytes_mean)
                        .sample(&mut noise_rng) as u64;
                }
            }
            if w.is_instantaneous() {
                let budget = w.lump_bytes.saturating_sub(loss);
                let seq = contact_seq;
                contact_seq += 1;
                match &mut batcher {
                    Some(batcher) => {
                        batcher.push(PendingDrive {
                            window: w,
                            now,
                            budget,
                            seq,
                            measured,
                        });
                        if batcher.full() {
                            flush_batches(
                                config,
                                routing,
                                &mut world,
                                &mut report,
                                pool.expect("batcher implies pool"),
                                batcher,
                                &mut flush_scratch,
                            );
                        }
                    }
                    None => drive_contact(
                        config,
                        routing,
                        &mut world,
                        &mut report,
                        &w,
                        now,
                        budget,
                        false,
                        seq,
                    ),
                }
            } else {
                // An injected abort fault cuts the window short: it closes
                // at the abort instant with only the capacity accrued by
                // then (the same semantics as a churn interruption).
                let end = hooks
                    .faults
                    .as_deref()
                    .and_then(|f| f.abort_for(i, w.start, w.end))
                    .unwrap_or(w.end);
                queue.push(end, SimEvent::ContactEnd(i));
                open.push(OpenWindow {
                    idx: i,
                    window: w,
                    loss,
                });
            }
            continue;
        }

        if packet_key == Some(best) {
            // Creations read and mutate world state other contacts may
            // share (the source buffer, holder sets): a barrier.
            if let Some(batcher) = &mut batcher {
                flush_batches(
                    config,
                    routing,
                    &mut world,
                    &mut report,
                    pool.expect("batcher implies pool"),
                    batcher,
                    &mut flush_scratch,
                );
            }
            let spec = next_packet.take().expect("packet candidate exists");
            next_packet = pull_packet(workload, &mut last_packet_time);

            let ttl_deadline = config
                .ttl
                .map_or(PacketStore::NO_TTL, |ttl| spec.time + ttl);
            let id = world
                .store
                .push(spec.src, spec.dst, spec.size_bytes, spec.time, ttl_deadline);
            let packet = world.store.get(id);
            world.delivered_at.push(None);
            world.holders.push(IndexSet::new());

            if !up[spec.src.index()] {
                // A down node cannot originate traffic.
                world.entered.push(false);
                routing.on_creation_dropped(&packet);
                continue;
            }

            let buf = &mut world.buffers[spec.src.index()];
            if buf.free_bytes() < spec.size_bytes {
                let needed = spec.size_bytes - buf.free_bytes();
                let victims =
                    routing.make_room(spec.src, &packet, needed, buf, &world.store, spec.time);
                for v in victims {
                    if world.buffers[spec.src.index()].remove(v) {
                        world.holders[v.index()].remove(spec.src.index());
                    }
                }
            }
            if world.buffers[spec.src.index()].insert(&packet, spec.time) {
                world.holders[id.index()].insert(spec.src.index());
                world.entered.push(true);
                routing.on_packet_created(&packet);
                if ttl_deadline != PacketStore::NO_TTL {
                    queue.push(ttl_deadline, SimEvent::PacketExpired(id));
                }
            } else {
                world.entered.push(false);
                routing.on_creation_dropped(&packet);
            }
            continue;
        }

        let (now, event) = queue.pop().expect("queue candidate exists");
        // Every queue event other than a window close reads or mutates
        // state pending drives may share (availability, holder sets,
        // buffers of arbitrary nodes): a barrier.
        if !matches!(event, SimEvent::ContactEnd(_)) {
            if let Some(batcher) = &mut batcher {
                flush_batches(
                    config,
                    routing,
                    &mut world,
                    &mut report,
                    pool.expect("batcher implies pool"),
                    batcher,
                    &mut flush_scratch,
                );
            }
        }
        match event {
            SimEvent::NodeUp(node) => {
                up[node.index()] = true;
                routing.on_node_up(node, now);
            }
            SimEvent::NodeDown(node) => {
                // Interrupt this node's active windows with the budget
                // accrued so far, ascending window index for determinism
                // (`open` is kept in that order).
                let mut k = 0;
                while k < open.len() {
                    if open[k].window.involves(node) {
                        let ow = open.remove(k);
                        let budget = ow.window.capacity_until(now).saturating_sub(ow.loss);
                        let seq = contact_seq;
                        contact_seq += 1;
                        drive_contact(
                            config,
                            routing,
                            &mut world,
                            &mut report,
                            &ow.window,
                            now,
                            budget,
                            true,
                            seq,
                        );
                    } else {
                        k += 1;
                    }
                }
                up[node.index()] = false;
                routing.on_node_down(node, now);
            }
            SimEvent::ContactEnd(i) => {
                // Not in the open set means the window failed, was
                // suppressed, or was already interrupted by churn.
                if let Some(pos) = open.iter().position(|ow| ow.idx == i) {
                    let ow = open.remove(pos);
                    let budget = ow.window.capacity_until(now).saturating_sub(ow.loss);
                    let seq = contact_seq;
                    contact_seq += 1;
                    match &mut batcher {
                        Some(batcher) => {
                            batcher.push(PendingDrive {
                                window: ow.window,
                                now,
                                budget,
                                seq,
                                measured: ow.window.start >= config.measure_from,
                            });
                            if batcher.full() {
                                flush_batches(
                                    config,
                                    routing,
                                    &mut world,
                                    &mut report,
                                    pool.expect("batcher implies pool"),
                                    batcher,
                                    &mut flush_scratch,
                                );
                            }
                        }
                        None => drive_contact(
                            config,
                            routing,
                            &mut world,
                            &mut report,
                            &ow.window,
                            now,
                            budget,
                            false,
                            seq,
                        ),
                    }
                }
            }
            SimEvent::PacketExpired(id) => {
                // Skip packets that were delivered first, and packets that
                // never entered the network — the engine only schedules
                // expiries for entered packets, but a snapshot produced by
                // the sharded director schedules them optimistically
                // before the creation verdict is known.
                if !world.entered[id.index()] || world.delivered_at[id.index()].is_some() {
                    continue;
                }
                let holders = std::mem::take(&mut world.holders[id.index()]);
                for h in holders.iter() {
                    world.buffers[h].remove(id);
                }
                report.expired += 1;
                routing.on_packet_expired(&world.store.get(id));
            }
            SimEvent::ContactStart(_) | SimEvent::PacketCreated(_) => {
                unreachable!("contact starts and creations come from the sources")
            }
        }
    }

    // Drives batched behind the final events still pend: flush them.
    if let Some(batcher) = &mut batcher {
        flush_batches(
            config,
            routing,
            &mut world,
            &mut report,
            pool.expect("batcher implies pool"),
            batcher,
            &mut flush_scratch,
        );
    }

    // Per-delivery processing latency (deployment emulation only): the
    // routing decisions above are unaffected; only the recorded delivery
    // timestamps shift, exactly like computation delay on a bus.
    if let Some(noise) = &noise {
        if noise.processing_delay_mean > TimeDelta::ZERO {
            let jitter = Exponential::with_mean(noise.processing_delay_mean.as_secs_f64());
            for slot in world.delivered_at.iter_mut().flatten() {
                *slot += TimeDelta::from_secs_f64(jitter.sample(&mut noise_rng));
            }
        }
    }

    let outcomes = SimReport::from_parts(
        world
            .store
            .iter()
            .zip(world.delivered_at.iter().copied())
            .zip(world.entered.iter().copied())
            .map(|((p, d), e)| (p, d, e)),
        config.horizon,
        config.deadline,
    );
    report.outcomes = outcomes.outcomes;
    report
}

/// Hands one driven contact to the protocol and accounts its ledger.
#[allow(clippy::too_many_arguments)]
fn drive_contact(
    config: &SimConfig,
    routing: &mut dyn Routing,
    world: &mut EngineWorld,
    report: &mut SimReport,
    w: &ContactWindow,
    now: Time,
    budget: u64,
    interrupted: bool,
    seq: u64,
) {
    // Classified by window *start* (the seed engine's contact-time
    // convention): a warm-up window that spans `measure_from` stays
    // unmeasured even though it is driven inside the measured span.
    let measured = w.start >= config.measure_from;
    if measured {
        report.contacts += 1;
        report.offered_bytes += 2 * budget;
    }
    let mut driver = ContactDriver::new(
        WorldMut::Full {
            packets: &world.store,
            buffers: &mut world.buffers,
            delivered_at: &mut world.delivered_at,
            holders: &mut world.holders,
        },
        now,
        w.a,
        w.b,
        budget,
        config.allow_global_knowledge,
        seq,
    );
    routing.on_contact(&mut driver);
    let ledger = driver.ledger();
    if measured {
        report.data_bytes += ledger.data_bytes;
        report.metadata_bytes += ledger.metadata_bytes;
        report.replications += ledger.replications;
    }
    routing.on_contact_end(w.a, w.b, now, interrupted);
}

/// Drains every drive held by the batch scheduler: executes the ready set
/// on the pool, commits it in scan order, promotes deferred drives, and
/// repeats until nothing is held. See [`crate::par`] for why this is
/// byte-identical to driving the same contacts serially in scan order.
fn flush_batches(
    config: &SimConfig,
    routing: &mut dyn Routing,
    world: &mut EngineWorld,
    report: &mut SimReport,
    pool: &ContactPool,
    batcher: &mut Batcher,
    scratch: &mut FlushScratch,
) {
    loop {
        batcher.take_ready_into(&mut scratch.ready);
        if scratch.ready.is_empty() {
            debug_assert!(batcher.is_empty(), "take_ready drains everything");
            return;
        }
        execute_ready(config, routing, world, report, pool, scratch);
    }
}

/// Executes one pairwise node-disjoint set of drives (`scratch.ready`) and
/// commits it, returning the driver and log allocations to the scratch
/// pool for the next flush.
fn execute_ready(
    config: &SimConfig,
    routing: &mut dyn Routing,
    world: &mut EngineWorld,
    report: &mut SimReport,
    pool: &ContactPool,
    scratch: &mut FlushScratch,
) {
    let FlushScratch {
        ready,
        drivers: parked,
        logs,
    } = scratch;
    let ready: &[PendingDrive] = ready;
    debug_assert!(!config.allow_global_knowledge);
    #[cfg(debug_assertions)]
    {
        // Defense in depth: the batcher's contract — pairwise-disjoint
        // node sets — is what makes the unsafe splits below sound.
        let mut nodes: Vec<usize> = ready
            .iter()
            .flat_map(|p| [p.window.a.index(), p.window.b.index()])
            .collect();
        nodes.sort_unstable();
        let len = nodes.len();
        nodes.dedup();
        debug_assert_eq!(len, nodes.len(), "batch members must be node-disjoint");
    }

    let EngineWorld {
        buffers,
        store,
        delivered_at,
        holders,
        ..
    } = world;
    let parts = SlicePartition::new(buffers.as_mut_slice());
    let delivered = RawSlice::new(delivered_at.as_mut_slice());
    let mut drivers = recycle_drivers(std::mem::take(parked));
    drivers.extend(ready.iter().map(|p| {
        // SAFETY: batch members are pairwise node-disjoint (asserted
        // above, guaranteed by the batcher), so every buffer slot is
        // borrowed at most once across this driver set.
        let (buf_a, buf_b) = unsafe { parts.pair_mut(p.window.a.index(), p.window.b.index()) };
        ContactDriver::new(
            WorldMut::Pair {
                packets: store,
                a: p.window.a,
                buf_a,
                b: p.window.b,
                buf_b,
                delivered_at: delivered.share(),
                holder_log: logs.pop().unwrap_or_default(),
            },
            p.now,
            p.window.a,
            p.window.b,
            p.budget,
            false,
            p.seq,
        )
    }));

    routing.on_contact_batch(&mut drivers, pool);

    // Commit in scan order: report accounting, deferred holder ops, and
    // the contact-end hook.
    for (p, driver) in ready.iter().zip(drivers.drain(..)) {
        let (ledger, mut log) = driver.into_commit();
        if p.measured {
            report.contacts += 1;
            report.offered_bytes += 2 * p.budget;
            report.data_bytes += ledger.data_bytes;
            report.metadata_bytes += ledger.metadata_bytes;
            report.replications += ledger.replications;
        }
        for op in log.drain(..) {
            if op.added {
                holders[op.id.index()].insert(op.node.index());
            } else {
                holders[op.id.index()].remove(op.node.index());
            }
        }
        logs.push(log);
        routing.on_contact_end(p.window.a, p.window.b, p.now, false);
    }
    *parked = recycle_drivers(drivers);
}

/// The engine-owned world state, grouped so helpers can borrow it whole.
struct EngineWorld {
    buffers: Vec<NodeBuffer>,
    store: PacketStore,
    delivered_at: Vec<Option<Time>>,
    /// Per-packet replica holder sets (ascending-order bitsets — O(1)
    /// insert/remove keeps fleet-wide replica spread off the hot path).
    holders: Vec<IndexSet>,
    entered: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::routing::TransferOutcome;
    use crate::types::{NodeId, Packet, PacketId};
    use crate::workload::{PacketSpec, Workload};

    /// Minimal flooding protocol for engine tests: each side sends
    /// everything it can, destined packets first.
    struct Flood;

    impl Routing for Flood {
        fn name(&self) -> String {
            "flood-test".into()
        }

        fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
            let (a, b) = driver.endpoints();
            for from in [a, b] {
                let to = driver.peer_of(from);
                let mut ids = driver.buffer(from).ids();
                // Destined packets first (direct delivery step).
                ids.sort_by_key(|&id| driver.packets().get(id).dst != to);
                for id in ids {
                    if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                        break;
                    }
                }
            }
        }
    }

    fn config(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        }
    }

    fn spec(t: u64, src: u32, dst: u32, size: u64) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: size,
        }
    }

    #[test]
    fn single_hop_delivery() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(r.data_bytes, 1024);
        assert_eq!(r.offered_bytes, 8192);
        assert_eq!(r.contacts, 1);
    }

    #[test]
    fn bandwidth_limits_transfers() {
        // Opportunity of 1 KB per direction, two 1 KB packets: one crosses.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                1024,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024), spec(2, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.data_bytes, 1024);
    }

    #[test]
    fn two_hop_relay() {
        // 0 meets 1, then 1 meets 2; packet 0→2 must relay through 1.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                Contact::new(Time::from_secs(10), NodeId(0), NodeId(1), 4096),
                Contact::new(Time::from_secs(20), NodeId(1), NodeId(2), 4096),
            ]),
            Workload::new(vec![spec(0, 0, 2, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 20.0).abs() < 1e-9);
        // One replication (0→1) plus one delivery (1→2).
        assert_eq!(r.replications, 1);
        assert_eq!(r.data_bytes, 2048);
    }

    #[test]
    fn source_buffer_overflow_drops_at_creation() {
        let cfg = SimConfig {
            buffer_capacity: 1500,
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::default(),
            Workload::new(vec![spec(1, 0, 1, 1024), spec(2, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.created(), 2);
        let entered: Vec<bool> = r.outcomes.iter().map(|o| o.entered_network).collect();
        assert_eq!(entered, vec![true, false]);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            Simulation::new(
                config(3),
                Schedule::new(vec![
                    Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 2048),
                    Contact::new(Time::from_secs(9), NodeId(1), NodeId(2), 2048),
                ]),
                Workload::new(vec![spec(0, 0, 2, 1024), spec(1, 2, 0, 1024)]),
            )
        };
        let r1 = build().run(&mut Flood);
        let r2 = build().run(&mut Flood);
        assert_eq!(r1, r2);
    }

    #[test]
    fn contact_before_creation_at_same_instant() {
        // The packet is created at t=10, the contact is at t=10: the packet
        // must not ride that contact.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(10, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn noise_failure_prob_one_kills_all_contacts() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        )
        .with_noise(NoiseModel {
            contact_failure_prob: 1.0,
            setup_loss_bytes_mean: 0.0,
            processing_delay_mean: TimeDelta::ZERO,
        });
        let r = sim.run(&mut Flood);
        assert_eq!(r.contacts_failed, 1);
        assert_eq!(r.contacts, 0);
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn noise_processing_delay_shifts_delivery_times() {
        let base = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let clean = base.clone().run(&mut Flood);
        let noisy = base
            .with_noise(NoiseModel {
                contact_failure_prob: 0.0,
                setup_loss_bytes_mean: 0.0,
                processing_delay_mean: TimeDelta::from_secs(5),
            })
            .run(&mut Flood);
        assert_eq!(noisy.delivered(), 1);
        assert!(noisy.avg_delay_secs().unwrap() > clean.avg_delay_secs().unwrap());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_nodes() {
        let _ = Simulation::new(
            config(1),
            Schedule::new(vec![Contact::new(Time::ZERO, NodeId(0), NodeId(1), 1)]),
            Workload::default(),
        );
    }

    #[test]
    #[should_panic(expected = "global knowledge is disabled")]
    fn global_view_gated() {
        struct Peeker;
        impl Routing for Peeker {
            fn name(&self) -> String {
                "peeker".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let _ = driver.global();
            }
        }
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(1),
                NodeId(0),
                NodeId(1),
                1,
            )]),
            Workload::default(),
        );
        let _ = sim.run(&mut Peeker);
    }

    #[test]
    fn global_view_when_enabled() {
        struct Checker {
            saw_holder: bool,
        }
        impl Routing for Checker {
            fn name(&self) -> String {
                "checker".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let g = driver.global();
                self.saw_holder = g.holders(PacketId(0)).eq([NodeId(0)]);
                assert!(!g.is_delivered(PacketId(0)));
            }
        }
        let cfg = SimConfig {
            allow_global_knowledge: true,
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(5),
                NodeId(0),
                NodeId(1),
                0,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let mut p = Checker { saw_holder: false };
        let _ = sim.run(&mut p);
        assert!(p.saw_holder);
    }

    #[test]
    fn metadata_accounting() {
        struct MetaOnly;
        impl Routing for MetaOnly {
            fn name(&self) -> String {
                "meta".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                assert_eq!(driver.charge_metadata(a, 100), 100);
                // Over-asking is clamped to the remaining opportunity.
                assert_eq!(driver.charge_metadata(b, 10_000), 1024);
                assert_eq!(driver.remaining_bytes(a), 924);
                assert_eq!(driver.remaining_bytes(b), 0);
            }
        }
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(5),
                NodeId(0),
                NodeId(1),
                1024,
            )]),
            Workload::default(),
        );
        let r = sim.run(&mut MetaOnly);
        assert_eq!(r.metadata_bytes, 1124);
        assert_eq!(r.data_bytes, 0);
        assert!((r.metadata_over_bandwidth() - 1124.0 / 2048.0).abs() < 1e-12);
    }

    #[test]
    fn needs_space_then_evict_then_replicate() {
        struct Evictor;
        impl Routing for Evictor {
            fn name(&self) -> String {
                "evictor".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                // b's buffer already holds p1 (created there); a holds p0.
                let p0 = PacketId(0);
                match driver.try_transfer(a, p0) {
                    TransferOutcome::NeedsSpace(needed) => {
                        assert!(needed > 0);
                        assert!(driver.evict(b, PacketId(1)));
                        assert_eq!(driver.try_transfer(a, p0), TransferOutcome::Replicated);
                    }
                    other => panic!("expected NeedsSpace, got {other:?}"),
                }
            }
        }
        let cfg = SimConfig {
            nodes: 3,
            buffer_capacity: 1024,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            // p0 at node 0 (dst 2 ⇒ replication, not delivery); p1 fills node 1.
            Workload::new(vec![spec(1, 0, 2, 1024), spec(2, 1, 2, 1024)]),
        );
        let r = sim.run(&mut Evictor);
        assert_eq!(r.replications, 1);
    }

    #[test]
    fn delivered_duplicate_detected() {
        // Node 0 and node 1 both hold p0 (via flooding), both meet node 2.
        struct TwoSenders;
        impl Routing for TwoSenders {
            fn name(&self) -> String {
                "two".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                for from in [a, b] {
                    for id in driver.buffer(from).ids() {
                        let _ = driver.try_transfer(from, id);
                    }
                }
            }
        }
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                // 0 meets 1: replicate p0 to 1.
                Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 4096),
                // 0 delivers to 2.
                Contact::new(Time::from_secs(10), NodeId(0), NodeId(2), 4096),
                // 1 re-delivers to 2 — duplicate.
                Contact::new(Time::from_secs(15), NodeId(1), NodeId(2), 4096),
            ]),
            Workload::new(vec![spec(0, 0, 2, 1024)]),
        );
        let r = sim.run(&mut TwoSenders);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 10.0).abs() < 1e-9);
        // 1 replication + 2 delivery transmissions crossed links.
        assert_eq!(r.data_bytes, 3 * 1024);
    }

    // --- Windowed-contact and churn semantics -----------------------------

    #[test]
    fn zero_duration_window_equals_instant_contact() {
        let run = |schedule: Schedule| {
            Simulation::new(
                config(2),
                schedule,
                Workload::new(vec![spec(1, 0, 1, 1024), spec(2, 0, 1, 1024)]),
            )
            .run(&mut Flood)
        };
        let via_contact = run(Schedule::new(vec![Contact::new(
            Time::from_secs(10),
            NodeId(0),
            NodeId(1),
            1024,
        )]));
        let via_window = run(Schedule::new(vec![ContactWindow::instant(
            Time::from_secs(10),
            NodeId(0),
            NodeId(1),
            1024,
        )]));
        assert_eq!(via_contact, via_window);
    }

    #[test]
    fn durative_window_accrues_bandwidth_and_delivers_at_close() {
        // Window open 10 s at 100 B/s: 1000 B budget. The 800 B packet
        // crosses; a second 800 B packet does not (accrual is the limit).
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![ContactWindow::new(
                Time::from_secs(10),
                Time::from_secs(20),
                NodeId(0),
                NodeId(1),
                100,
            )]),
            Workload::new(vec![spec(1, 0, 1, 800), spec(2, 0, 1, 800)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.data_bytes, 800);
        assert_eq!(r.offered_bytes, 2 * 1000);
        // The protocol is driven when the window closes.
        assert!((r.avg_delay_secs().unwrap() - 19.0).abs() < 1e-9);
    }

    #[test]
    fn packet_created_mid_window_rides_it() {
        // The window opens at 10 and closes at 30; the packet is created at
        // 20 — inside the window — and still crosses, because durative
        // windows are driven at close.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![ContactWindow::new(
                Time::from_secs(10),
                Time::from_secs(30),
                NodeId(0),
                NodeId(1),
                1024,
            )]),
            Workload::new(vec![spec(20, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn node_down_interrupts_window_with_partial_accrual() {
        // Window 10..20 s at 100 B/s, but node 1 dies at 15 s: only 500 B
        // accrued, so the 800 B packet cannot cross.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![ContactWindow::new(
                Time::from_secs(10),
                Time::from_secs(20),
                NodeId(0),
                NodeId(1),
                100,
            )]),
            Workload::new(vec![spec(1, 0, 1, 800)]),
        )
        .with_churn(vec![NodeEvent {
            time: Time::from_secs(15),
            node: NodeId(1),
            up: false,
        }]);
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 0);
        assert_eq!(r.offered_bytes, 2 * 500);
        assert_eq!(r.contacts, 1, "the interrupted contact still took place");

        // A smaller packet that fits the accrued 500 B is delivered at the
        // interruption instant.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![ContactWindow::new(
                Time::from_secs(10),
                Time::from_secs(20),
                NodeId(0),
                NodeId(1),
                100,
            )]),
            Workload::new(vec![spec(1, 0, 1, 400)]),
        )
        .with_churn(vec![NodeEvent {
            time: Time::from_secs(15),
            node: NodeId(1),
            up: false,
        }]);
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn down_node_suppresses_contacts_and_creations() {
        // Node 1 is down over [5, 15]: the contact at 10 never happens; the
        // packet node 1 creates at 12 is dropped; after it returns, the
        // contact at 20 delivers node 0's packet.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![
                Contact::new(Time::from_secs(10), NodeId(0), NodeId(1), 4096),
                Contact::new(Time::from_secs(20), NodeId(0), NodeId(1), 4096),
            ]),
            Workload::new(vec![spec(1, 0, 1, 1024), spec(12, 1, 0, 1024)]),
        )
        .with_churn(vec![
            NodeEvent {
                time: Time::from_secs(5),
                node: NodeId(1),
                up: false,
            },
            NodeEvent {
                time: Time::from_secs(15),
                node: NodeId(1),
                up: true,
            },
        ]);
        let r = sim.run(&mut Flood);
        assert_eq!(r.contacts_suppressed, 1);
        assert_eq!(r.contacts, 1);
        assert_eq!(r.delivered(), 1);
        let entered: Vec<bool> = r.outcomes.iter().map(|o| o.entered_network).collect();
        assert_eq!(entered, vec![true, false]);
    }

    #[test]
    fn durative_window_spanning_measure_from_stays_unmeasured() {
        // Warm-up convention: a window is classified by its *start*. This
        // one opens at 5 s (before measure_from = 10 s) and closes at 20 s
        // (inside the measured span); its bytes must not be counted, while
        // the instantaneous contact at 30 s is.
        let cfg = SimConfig {
            measure_from: Time::from_secs(10),
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![
                ContactWindow::new(
                    Time::from_secs(5),
                    Time::from_secs(20),
                    NodeId(0),
                    NodeId(1),
                    100,
                ),
                ContactWindow::instant(Time::from_secs(30), NodeId(0), NodeId(1), 4096),
            ]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.contacts, 1);
        assert_eq!(r.offered_bytes, 2 * 4096);
        // The spanning window still delivered (it is driven, just not
        // measured) — delivery happened at its close, 20 s.
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 19.0).abs() < 1e-9);
        assert_eq!(r.data_bytes, 0, "warm-up bytes excluded from accounting");
    }

    #[test]
    fn ttl_expiry_evicts_replicas_before_later_contacts() {
        // Packet created at 1 s with a 5 s TTL; the only contact is at 10 s:
        // by then the packet has been evicted everywhere.
        let cfg = SimConfig {
            ttl: Some(TimeDelta::from_secs(5)),
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 0);
        assert_eq!(r.expired, 1);
        assert_eq!(r.data_bytes, 0, "expired replica must not cross");
    }

    #[test]
    fn ttl_does_not_touch_delivered_packets() {
        let cfg = SimConfig {
            ttl: Some(TimeDelta::from_secs(50)),
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.expired, 0);
    }

    #[test]
    fn expiry_at_contact_instant_does_not_ride() {
        // TTL lands exactly on the contact instant: rank(PacketExpired) <
        // rank(ContactStart), so the packet is evicted first.
        let cfg = SimConfig {
            ttl: Some(TimeDelta::from_secs(9)),
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 0);
        assert_eq!(r.expired, 1);
    }

    #[test]
    fn lifecycle_hooks_fire_in_order() {
        #[derive(Default)]
        struct Recorder {
            log: Vec<String>,
        }
        impl Routing for Recorder {
            fn name(&self) -> String {
                "recorder".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                self.log
                    .push(format!("contact@{}", driver.now().0 / 1_000_000));
            }
            fn on_contact_end(&mut self, _a: NodeId, _b: NodeId, now: Time, interrupted: bool) {
                self.log
                    .push(format!("end@{}:{}", now.0 / 1_000_000, interrupted));
            }
            fn on_packet_created(&mut self, packet: &Packet) {
                self.log.push(format!("created:{}", packet.id));
            }
            fn on_packet_expired(&mut self, packet: &Packet) {
                self.log.push(format!("expired:{}", packet.id));
            }
            fn on_node_down(&mut self, node: NodeId, now: Time) {
                self.log.push(format!("down:{node}@{}", now.0 / 1_000_000));
            }
            fn on_node_up(&mut self, node: NodeId, now: Time) {
                self.log.push(format!("up:{node}@{}", now.0 / 1_000_000));
            }
        }
        let cfg = SimConfig {
            ttl: Some(TimeDelta::from_secs(30)),
            ..config(3)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![ContactWindow::new(
                Time::from_secs(10),
                Time::from_secs(40),
                NodeId(0),
                NodeId(1),
                100,
            )]),
            Workload::new(vec![spec(1, 0, 2, 50)]),
        )
        .with_churn(vec![
            NodeEvent {
                time: Time::from_secs(20),
                node: NodeId(1),
                up: false,
            },
            NodeEvent {
                time: Time::from_secs(25),
                node: NodeId(1),
                up: true,
            },
        ]);
        let mut rec = Recorder::default();
        let _ = sim.run(&mut rec);
        assert_eq!(
            rec.log,
            vec![
                "created:p0",
                "contact@20", // interrupted by node 1 going down
                "end@20:true",
                "down:n1@20",
                "up:n1@25",
                "expired:p0", // TTL at 31 s; the window does not reopen
            ]
        );
    }
}
