//! The discrete-event simulation engine.
//!
//! Mirrors the paper's evaluation vehicle (§5.3): "The simulator takes as
//! input a schedule of node meetings, the bandwidth available at each
//! meeting, and a routing algorithm." Events (packet creations and contacts)
//! are processed in time order; at each contact the routing protocol drives
//! transfers through a [`ContactDriver`] that enforces the feasibility rules
//! of §3.1. Runs are deterministic given the configuration seed.

use crate::contact::Schedule;
use crate::driver::{ContactDriver, WorldMut};
use crate::noise::NoiseModel;
use crate::report::SimReport;
use crate::routing::{PacketStore, Routing, SimConfig};
use crate::time::{Time, TimeDelta};
use crate::types::{NodeId, Packet, PacketId};
use crate::NodeBuffer;
use dtn_stats::sample::Exponential;
use dtn_stats::stream;
use rand::Rng;

/// A fully specified simulation run: configuration, meeting schedule and
/// packet workload.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    schedule: Schedule,
    workload: crate::workload::Workload,
    noise: Option<NoiseModel>,
}

impl Simulation {
    /// Assembles a run and validates that every node id referenced by the
    /// schedule or workload is below `config.nodes`.
    pub fn new(config: SimConfig, schedule: Schedule, workload: crate::workload::Workload) -> Self {
        let n = config.nodes;
        for c in schedule.contacts() {
            assert!(
                c.a.index() < n && c.b.index() < n,
                "contact references node outside 0..{n}"
            );
        }
        for s in workload.specs() {
            assert!(
                s.src.index() < n && s.dst.index() < n,
                "packet references node outside 0..{n}"
            );
        }
        Self {
            config,
            schedule,
            workload,
            noise: None,
        }
    }

    /// Enables deployment-noise emulation for this run (§5, Fig. 3).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The run's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The meeting schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The packet workload.
    pub fn workload(&self) -> &crate::workload::Workload {
        &self.workload
    }

    /// Executes the run against `routing` and returns the measured report.
    ///
    /// The engine owns all world state; the protocol only moves packets
    /// through the [`ContactDriver`]. Identical inputs (including
    /// `config.seed`) produce identical reports.
    pub fn run(&self, routing: &mut dyn Routing) -> SimReport {
        let n = self.config.nodes;
        let mut buffers: Vec<NodeBuffer> = (0..n)
            .map(|_| NodeBuffer::new(self.config.buffer_capacity))
            .collect();
        let mut store = PacketStore::default();
        let mut delivered_at: Vec<Option<Time>> = Vec::new();
        let mut holders: Vec<Vec<NodeId>> = Vec::new();
        let mut entered: Vec<bool> = Vec::new();
        let mut noise_rng = stream(self.config.seed, "sim-noise");

        routing.on_init(&self.config);

        let contacts = self.schedule.contacts();
        let specs = self.workload.specs();
        let (mut ci, mut si) = (0usize, 0usize);

        let mut report = SimReport {
            horizon: self.config.horizon,
            deadline: self.config.deadline,
            ..SimReport::default()
        };

        while ci < contacts.len() || si < specs.len() {
            let contact_time = contacts.get(ci).map(|c| c.time);
            let spec_time = specs.get(si).map(|s| s.time);
            // Contacts precede creations at the same instant: a packet
            // created at the moment of a meeting does not ride that meeting.
            let take_contact = match (contact_time, spec_time) {
                (Some(ct), Some(st)) => ct <= st,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };

            if take_contact {
                let c = contacts[ci];
                ci += 1;
                let measured = c.time >= self.config.measure_from;
                let mut bytes = c.bytes;
                if let Some(noise) = &self.noise {
                    if noise_rng.gen::<f64>() < noise.contact_failure_prob {
                        if measured {
                            report.contacts_failed += 1;
                        }
                        continue;
                    }
                    if noise.setup_loss_bytes_mean > 0.0 {
                        let loss = Exponential::with_mean(noise.setup_loss_bytes_mean)
                            .sample(&mut noise_rng) as u64;
                        bytes = bytes.saturating_sub(loss);
                    }
                }
                if measured {
                    report.contacts += 1;
                    report.offered_bytes += 2 * bytes;
                }
                let mut driver = ContactDriver::new(
                    WorldMut {
                        packets: &store,
                        buffers: &mut buffers,
                        delivered_at: &mut delivered_at,
                        holders: &mut holders,
                    },
                    c.time,
                    c.a,
                    c.b,
                    bytes,
                    self.config.allow_global_knowledge,
                );
                routing.on_contact(&mut driver);
                let ledger = driver.ledger();
                if measured {
                    report.data_bytes += ledger.data_bytes;
                    report.metadata_bytes += ledger.metadata_bytes;
                    report.replications += ledger.replications;
                }
            } else {
                let spec = specs[si];
                si += 1;
                let id = PacketId(store.len() as u32);
                let packet = Packet {
                    id,
                    src: spec.src,
                    dst: spec.dst,
                    size_bytes: spec.size_bytes,
                    created_at: spec.time,
                };
                store.push(packet);
                delivered_at.push(None);
                holders.push(Vec::new());

                let buf = &mut buffers[spec.src.index()];
                if buf.free_bytes() < spec.size_bytes {
                    let needed = spec.size_bytes - buf.free_bytes();
                    let victims =
                        routing.make_room(spec.src, &packet, needed, buf, &store, spec.time);
                    for v in victims {
                        if buffers[spec.src.index()].remove(v) {
                            let list = &mut holders[v.index()];
                            if let Ok(pos) = list.binary_search(&spec.src) {
                                list.remove(pos);
                            }
                        }
                    }
                }
                if buffers[spec.src.index()].insert(id, spec.size_bytes, spec.time) {
                    holders[id.index()].push(spec.src);
                    entered.push(true);
                    routing.on_packet_created(&packet);
                } else {
                    entered.push(false);
                    routing.on_creation_dropped(&packet);
                }
            }
        }

        // Per-delivery processing latency (deployment emulation only): the
        // routing decisions above are unaffected; only the recorded delivery
        // timestamps shift, exactly like computation delay on a bus.
        if let Some(noise) = &self.noise {
            if noise.processing_delay_mean > TimeDelta::ZERO {
                let jitter = Exponential::with_mean(noise.processing_delay_mean.as_secs_f64());
                for slot in delivered_at.iter_mut().flatten() {
                    *slot += TimeDelta::from_secs_f64(jitter.sample(&mut noise_rng));
                }
            }
        }

        let outcomes = SimReport::from_parts(
            store
                .iter()
                .copied()
                .zip(delivered_at.iter().copied())
                .zip(entered.iter().copied())
                .map(|((p, d), e)| (p, d, e)),
            self.config.horizon,
            self.config.deadline,
        );
        report.outcomes = outcomes.outcomes;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::routing::TransferOutcome;
    use crate::workload::{PacketSpec, Workload};

    /// Minimal flooding protocol for engine tests: each side sends
    /// everything it can, destined packets first.
    struct Flood;

    impl Routing for Flood {
        fn name(&self) -> String {
            "flood-test".into()
        }

        fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
            let (a, b) = driver.endpoints();
            for from in [a, b] {
                let to = driver.peer_of(from);
                let mut ids = driver.buffer(from).ids();
                // Destined packets first (direct delivery step).
                ids.sort_by_key(|&id| driver.packets().get(id).dst != to);
                for id in ids {
                    if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                        break;
                    }
                }
            }
        }
    }

    fn config(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        }
    }

    fn spec(t: u64, src: u32, dst: u32, size: u64) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: size,
        }
    }

    #[test]
    fn single_hop_delivery() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(r.data_bytes, 1024);
        assert_eq!(r.offered_bytes, 8192);
        assert_eq!(r.contacts, 1);
    }

    #[test]
    fn bandwidth_limits_transfers() {
        // Opportunity of 1 KB per direction, two 1 KB packets: one crosses.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                1024,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024), spec(2, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.data_bytes, 1024);
    }

    #[test]
    fn two_hop_relay() {
        // 0 meets 1, then 1 meets 2; packet 0→2 must relay through 1.
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                Contact::new(Time::from_secs(10), NodeId(0), NodeId(1), 4096),
                Contact::new(Time::from_secs(20), NodeId(1), NodeId(2), 4096),
            ]),
            Workload::new(vec![spec(0, 0, 2, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 20.0).abs() < 1e-9);
        // One replication (0→1) plus one delivery (1→2).
        assert_eq!(r.replications, 1);
        assert_eq!(r.data_bytes, 2048);
    }

    #[test]
    fn source_buffer_overflow_drops_at_creation() {
        let cfg = SimConfig {
            buffer_capacity: 1500,
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::default(),
            Workload::new(vec![spec(1, 0, 1, 1024), spec(2, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.created(), 2);
        let entered: Vec<bool> = r.outcomes.iter().map(|o| o.entered_network).collect();
        assert_eq!(entered, vec![true, false]);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            Simulation::new(
                config(3),
                Schedule::new(vec![
                    Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 2048),
                    Contact::new(Time::from_secs(9), NodeId(1), NodeId(2), 2048),
                ]),
                Workload::new(vec![spec(0, 0, 2, 1024), spec(1, 2, 0, 1024)]),
            )
        };
        let r1 = build().run(&mut Flood);
        let r2 = build().run(&mut Flood);
        assert_eq!(r1, r2);
    }

    #[test]
    fn contact_before_creation_at_same_instant() {
        // The packet is created at t=10, the contact is at t=10: the packet
        // must not ride that contact.
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(10, 0, 1, 1024)]),
        );
        let r = sim.run(&mut Flood);
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn noise_failure_prob_one_kills_all_contacts() {
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        )
        .with_noise(NoiseModel {
            contact_failure_prob: 1.0,
            setup_loss_bytes_mean: 0.0,
            processing_delay_mean: TimeDelta::ZERO,
        });
        let r = sim.run(&mut Flood);
        assert_eq!(r.contacts_failed, 1);
        assert_eq!(r.contacts, 0);
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn noise_processing_delay_shifts_delivery_times() {
        let base = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let clean = base.clone().run(&mut Flood);
        let noisy = base
            .with_noise(NoiseModel {
                contact_failure_prob: 0.0,
                setup_loss_bytes_mean: 0.0,
                processing_delay_mean: TimeDelta::from_secs(5),
            })
            .run(&mut Flood);
        assert_eq!(noisy.delivered(), 1);
        assert!(noisy.avg_delay_secs().unwrap() > clean.avg_delay_secs().unwrap());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_nodes() {
        let _ = Simulation::new(
            config(1),
            Schedule::new(vec![Contact::new(Time::ZERO, NodeId(0), NodeId(1), 1)]),
            Workload::default(),
        );
    }

    #[test]
    #[should_panic(expected = "global knowledge is disabled")]
    fn global_view_gated() {
        struct Peeker;
        impl Routing for Peeker {
            fn name(&self) -> String {
                "peeker".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let _ = driver.global();
            }
        }
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(1),
                NodeId(0),
                NodeId(1),
                1,
            )]),
            Workload::default(),
        );
        let _ = sim.run(&mut Peeker);
    }

    #[test]
    fn global_view_when_enabled() {
        struct Checker {
            saw_holder: bool,
        }
        impl Routing for Checker {
            fn name(&self) -> String {
                "checker".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let g = driver.global();
                self.saw_holder = g.holders(PacketId(0)) == [NodeId(0)];
                assert!(!g.is_delivered(PacketId(0)));
            }
        }
        let cfg = SimConfig {
            allow_global_knowledge: true,
            ..config(2)
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(5),
                NodeId(0),
                NodeId(1),
                0,
            )]),
            Workload::new(vec![spec(1, 0, 1, 1024)]),
        );
        let mut p = Checker { saw_holder: false };
        let _ = sim.run(&mut p);
        assert!(p.saw_holder);
    }

    #[test]
    fn metadata_accounting() {
        struct MetaOnly;
        impl Routing for MetaOnly {
            fn name(&self) -> String {
                "meta".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                assert_eq!(driver.charge_metadata(a, 100), 100);
                // Over-asking is clamped to the remaining opportunity.
                assert_eq!(driver.charge_metadata(b, 10_000), 1024);
                assert_eq!(driver.remaining_bytes(a), 924);
                assert_eq!(driver.remaining_bytes(b), 0);
            }
        }
        let sim = Simulation::new(
            config(2),
            Schedule::new(vec![Contact::new(
                Time::from_secs(5),
                NodeId(0),
                NodeId(1),
                1024,
            )]),
            Workload::default(),
        );
        let r = sim.run(&mut MetaOnly);
        assert_eq!(r.metadata_bytes, 1124);
        assert_eq!(r.data_bytes, 0);
        assert!((r.metadata_over_bandwidth() - 1124.0 / 2048.0).abs() < 1e-12);
    }

    #[test]
    fn needs_space_then_evict_then_replicate() {
        struct Evictor;
        impl Routing for Evictor {
            fn name(&self) -> String {
                "evictor".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                // b's buffer already holds p1 (created there); a holds p0.
                let p0 = PacketId(0);
                match driver.try_transfer(a, p0) {
                    TransferOutcome::NeedsSpace(needed) => {
                        assert!(needed > 0);
                        assert!(driver.evict(b, PacketId(1)));
                        assert_eq!(driver.try_transfer(a, p0), TransferOutcome::Replicated);
                    }
                    other => panic!("expected NeedsSpace, got {other:?}"),
                }
            }
        }
        let cfg = SimConfig {
            nodes: 3,
            buffer_capacity: 1024,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                4096,
            )]),
            // p0 at node 0 (dst 2 ⇒ replication, not delivery); p1 fills node 1.
            Workload::new(vec![spec(1, 0, 2, 1024), spec(2, 1, 2, 1024)]),
        );
        let r = sim.run(&mut Evictor);
        assert_eq!(r.replications, 1);
    }

    #[test]
    fn delivered_duplicate_detected() {
        // Node 0 and node 1 both hold p0 (via flooding), both meet node 2.
        struct TwoSenders;
        impl Routing for TwoSenders {
            fn name(&self) -> String {
                "two".into()
            }
            fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
                let (a, b) = driver.endpoints();
                for from in [a, b] {
                    for id in driver.buffer(from).ids() {
                        let _ = driver.try_transfer(from, id);
                    }
                }
            }
        }
        let sim = Simulation::new(
            config(3),
            Schedule::new(vec![
                // 0 meets 1: replicate p0 to 1.
                Contact::new(Time::from_secs(5), NodeId(0), NodeId(1), 4096),
                // 0 delivers to 2.
                Contact::new(Time::from_secs(10), NodeId(0), NodeId(2), 4096),
                // 1 re-delivers to 2 — duplicate.
                Contact::new(Time::from_secs(15), NodeId(1), NodeId(2), 4096),
            ]),
            Workload::new(vec![spec(0, 0, 2, 1024)]),
        );
        let r = sim.run(&mut TwoSenders);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 10.0).abs() < 1e-9);
        // 1 replication + 2 delivery transmissions crossed links.
        assert_eq!(r.data_bytes, 3 * 1024);
    }
}
