//! Intra-run parallel execution: the conservative batch scheduler's worker
//! pool and the unsafe-but-contracted splitting primitives it runs on.
//!
//! The engine's event stream is inherently sequential — events commit in
//! the documented `(time, rank, seq)` order — but most of the *work* is
//! driven contacts, and a contact only touches per-endpoint state (its two
//! node buffers, its two protocol states) plus per-packet facts that are
//! exclusive to it (see `driver.rs`). Contacts whose node sets are
//! disjoint therefore commute, and the engine exploits that with a
//! conservative parallel discrete-event layer:
//!
//! 1. [`Batcher`] scans the merged event stream over a bounded lookahead
//!    window and greedily groups contact drives with pairwise-disjoint
//!    node sets; a drive that conflicts with anything already grouped is
//!    *deferred* to a later pass (never reordered against a conflicting
//!    drive). Any non-contact event (creation, TTL expiry, churn) is a
//!    barrier: every pending drive executes before it.
//! 2. [`ContactPool`] executes one batch across `RAPID_INTRA_JOBS` workers
//!    (scoped threads; the caller participates, so `jobs = 1` never spawns).
//! 3. The engine commits results — report accounting, holder-table ops,
//!    `on_contact_end` hooks — serially, in the scan order.
//!
//! Determinism argument: the scan itself follows the serial drain order
//! (so noise draws, suppression checks and contact sequence numbers are
//! identical to the serial engine); batch members are pairwise
//! node-disjoint, and a deferred drive is only ever executed *after*
//! every earlier drive it conflicts with; all cross-contact effects
//! (holder sets, delivered-at facts, report sums) commute across
//! node-disjoint contacts. `RAPID_INTRA_JOBS=1` (the default) bypasses
//! this module entirely — byte-identical by construction, not by
//! argument.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a routing protocol's contact handler may be scheduled within one
/// run (see [`crate::routing::Routing::contact_concurrency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactConcurrency {
    /// Contacts must be driven one at a time, in event order (the
    /// default; always correct).
    Serial,
    /// Contacts whose node sets are disjoint may be driven concurrently:
    /// the protocol promises that `on_contact` / `on_contact_end` touch
    /// only per-endpoint protocol state (plus the driver), and that any
    /// randomness is derived from the driver's contact sequence number
    /// rather than a shared stream.
    NodeDisjoint,
}

/// The intra-run worker count from `RAPID_INTRA_JOBS` (default 1 = the
/// serial engine). Harness code plumbs this into
/// [`crate::routing::SimConfig::intra_jobs`].
pub fn intra_jobs_from_env() -> usize {
    std::env::var("RAPID_INTRA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A raw reference to the batch task, stored type-erased so worker threads
/// can pick it up. Validity: only dereferenced for indices of the current
/// generation, all of which complete before [`ContactPool::run`] returns.
struct TaskRef(*const (dyn Fn(usize, usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls are safe) and the pointer is
// only dereferenced while `run` keeps the referent alive (see above).
unsafe impl Send for TaskRef {}

struct PoolState {
    /// Monotone batch counter; workers wake when it advances.
    generation: u64,
    /// Highest generation fully completed (all `n` indices executed and
    /// every drainer left). Guarded by the mutex: once set, late-waking
    /// workers skip the generation entirely.
    completed: u64,
    /// The current batch task and its index count. The pointer is only
    /// dereferenced after a successful index claim, which can only happen
    /// while [`ContactPool::run`] is still blocked on this generation.
    task: Option<TaskRef>,
    n: usize,
    /// Workers currently inside the drain loop of the current generation.
    /// `run` does not return (and no later generation can reuse the
    /// cursor) until this reaches zero — which is what makes the raw task
    /// pointer and the shared atomics sound across generations.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    work: Condvar,
    /// The caller waits here for batch completion.
    done_cv: Condvar,
    /// Next index to claim within the current batch.
    cursor: AtomicUsize,
    /// Indices completed within the current batch.
    done: AtomicUsize,
}

/// A run-scoped worker pool executing index-addressed batch tasks.
///
/// `run(n, task)` calls `task(worker, index)` for every `index in 0..n`,
/// spreading indices over `jobs` workers (`worker in 0..jobs`; worker 0 is
/// the calling thread). Per-worker scratch state can safely be indexed by
/// `worker`. The pool is started inside a [`std::thread::scope`] by the
/// engine, so no thread outlives the run; dropping the pool shuts the
/// workers down.
pub struct ContactPool {
    shared: Arc<PoolShared>,
    jobs: usize,
}

impl ContactPool {
    /// Starts `jobs - 1` workers on `scope` (the caller is worker 0).
    pub fn start<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        jobs: usize,
    ) -> Self {
        assert!(jobs >= 1, "need at least the calling worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                completed: 0,
                task: None,
                n: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
        });
        for worker in 1..jobs {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared, worker));
        }
        Self { shared, jobs }
    }

    /// Number of workers, including the calling thread. Protocols size
    /// per-worker scratch tables off this.
    pub fn workers(&self) -> usize {
        self.jobs
    }

    /// Executes `task(worker, index)` for every `index in 0..n` and
    /// returns when all calls completed. Calls for distinct indices may
    /// run concurrently on distinct workers; `task` must therefore only
    /// touch state that is disjoint per index (plus per-worker scratch).
    pub fn run(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.jobs == 1 || n == 1 {
            for i in 0..n {
                task(0, i);
            }
            return;
        }
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            // No drainer of an earlier generation can be live here: `run`
            // only returned once `active == 0`, and workers re-enter the
            // drain only for a fresh, uncompleted generation.
            self.shared.cursor.store(0, Ordering::Relaxed);
            self.shared.done.store(0, Ordering::Relaxed);
            // SAFETY: lifetime erasure only — the pointer is dereferenced
            // solely for indices of this generation, all of which complete
            // before `run` returns (the completion wait below).
            let erased: &'static (dyn Fn(usize, usize) + Sync) =
                unsafe { std::mem::transmute(task) };
            state.task = Some(TaskRef(erased as *const _));
            state.n = n;
            state.generation += 1;
        }
        self.shared.work.notify_all();

        // The caller participates as worker 0 (through the safe
        // reference; worker threads go through the claimed-index raw
        // pointer path, see `worker_loop`).
        loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            task(0, i);
            self.shared.done.fetch_add(1, Ordering::AcqRel);
        }

        // Wait until every index completed AND every worker has left the
        // drain loop; only then may the task reference die or the atomics
        // be reused. Marking the generation completed under the same lock
        // hold makes late-waking workers skip it entirely.
        let mut state = self.shared.state.lock().expect("pool lock");
        while self.shared.done.load(Ordering::Acquire) < n || state.active > 0 {
            state = self.shared.done_cv.wait(state).expect("pool wait");
        }
        state.completed = state.generation;
    }
}

impl Drop for ContactPool {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut last_seen = 0u64;
    loop {
        let (task, n) = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation > last_seen {
                    if state.completed >= state.generation {
                        // Woke after the batch already finished: skip it.
                        last_seen = state.generation;
                    } else {
                        break;
                    }
                }
                state = shared.work.wait(state).expect("pool wait");
            }
            last_seen = state.generation;
            state.active += 1;
            (
                state.task.as_ref().expect("live generation has a task").0,
                state.n,
            )
        };
        loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // SAFETY: a successfully claimed index implies `run` is still
            // blocked on this generation (it waits for done == n and
            // active == 0), so the referent is alive.
            let task: &(dyn Fn(usize, usize) + Sync) = unsafe { &*task };
            task(worker, i);
            shared.done.fetch_add(1, Ordering::AcqRel);
        }
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        drop(state);
        shared.done_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Disjoint-access primitives
// ---------------------------------------------------------------------------

/// A shareable view of a mutable slice that hands out `&mut` references to
/// *disjoint* elements across threads.
///
/// This is the standard disjoint-indices pattern: the engine's batch
/// scheduler guarantees that concurrently-executing contacts address
/// pairwise-disjoint node (and scratch/driver) indices, which is exactly
/// the contract the unsafe accessors require. All accessors are `unsafe`
/// because that disjointness lives outside the type system.
pub struct SlicePartition<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the partition only yields disjoint `&mut T` under the caller's
// contract; sending/sharing the view itself carries no aliasing.
unsafe impl<T: Send> Send for SlicePartition<'_, T> {}
unsafe impl<T: Send> Sync for SlicePartition<'_, T> {}

impl<'a, T> SlicePartition<'a, T> {
    /// Wraps a slice for disjoint-index access.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    /// No other live reference (from this partition or elsewhere) may
    /// address `i` for the lifetime of the returned borrow.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        &mut *self.ptr.add(i)
    }

    /// Exclusive access to two distinct elements.
    ///
    /// # Safety
    /// As [`SlicePartition::get_mut`], for both indices.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn pair_mut(&self, i: usize, j: usize) -> (&mut T, &mut T) {
        assert_ne!(i, j, "pair indices must be distinct");
        (self.get_mut(i), self.get_mut(j))
    }
}

/// A shareable mutable view of a slice whose *per-index exclusivity* is
/// guaranteed by the batch contract rather than the borrow checker — used
/// for the engine's `delivered_at` table, where a packet's slot is only
/// ever touched by the (single, per batch) contact involving the packet's
/// destination.
pub struct RawSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for RawSlice<'_, T> {}
unsafe impl<T: Send> Sync for RawSlice<'_, T> {}

impl<'a, T: Copy> RawSlice<'a, T> {
    /// Wraps a slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// A second handle onto the same slice (for another batch member).
    pub fn share(&self) -> Self {
        Self {
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No concurrent writer may address `i` (batch contract).
    pub unsafe fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// No concurrent reader or writer may address `i` (batch contract).
    pub unsafe fn set(&self, i: usize, value: T) {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        *self.ptr.add(i) = value;
    }
}

// ---------------------------------------------------------------------------
// Batch grouping
// ---------------------------------------------------------------------------

/// One contact drive pending batch execution; built by the engine's scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDrive {
    /// The window being driven.
    pub window: crate::contact::ContactWindow,
    /// The drive instant (window close, or start for instantaneous).
    pub now: crate::time::Time,
    /// Per-direction byte budget.
    pub budget: u64,
    /// Contact sequence number in serial scan order (drives the
    /// per-contact RNG substreams of randomized protocols).
    pub seq: u64,
    /// Whether this contact falls in the measured span.
    pub measured: bool,
}

/// Greedy conflict-free grouping of contact drives (see the module docs).
///
/// Drives are `push`ed in serial scan order. A drive whose node set is
/// disjoint from everything currently held joins the *ready* set; a
/// conflicting drive is *deferred*. [`Batcher::take_ready`] yields the
/// ready set for execution and promotes deferred drives (in order, again
/// conflict-checked) into the next ready set, so two conflicting drives
/// always execute in scan order, across distinct passes.
#[derive(Debug)]
pub struct Batcher {
    ready: Vec<PendingDrive>,
    deferred: Vec<PendingDrive>,
    /// Epoch-stamped membership: `stamp[node] == epoch` means some held
    /// drive (ready or deferred) uses the node.
    stamp: Vec<u64>,
    epoch: u64,
    lookahead: usize,
}

impl Batcher {
    /// A batcher for `nodes` node ids with the given lookahead bound
    /// (maximum drives held before a flush is forced).
    pub fn new(nodes: usize, lookahead: usize) -> Self {
        Self {
            ready: Vec::new(),
            deferred: Vec::new(),
            stamp: vec![0; nodes],
            epoch: 0,
            lookahead: lookahead.max(1),
        }
    }

    /// Number of drives currently held (ready + deferred).
    pub fn held(&self) -> usize {
        self.ready.len() + self.deferred.len()
    }

    /// Whether the lookahead bound is reached and a flush is due.
    pub fn full(&self) -> bool {
        self.held() >= self.lookahead
    }

    /// Whether no drives are held.
    pub fn is_empty(&self) -> bool {
        self.held() == 0
    }

    fn uses(&self, node: usize) -> bool {
        self.stamp[node] == self.epoch
    }

    fn mark(&mut self, node: usize) {
        self.stamp[node] = self.epoch;
    }

    /// Adds a drive in scan order.
    pub fn push(&mut self, drive: PendingDrive) {
        if self.is_empty() {
            self.epoch += 1;
        }
        let (a, b) = (drive.window.a.index(), drive.window.b.index());
        if self.uses(a) || self.uses(b) {
            self.deferred.push(drive);
        } else {
            self.ready.push(drive);
        }
        self.mark(a);
        self.mark(b);
    }

    /// Takes the ready set (pairwise node-disjoint, scan-ordered) for
    /// execution, then promotes deferred drives into the next ready set.
    /// Returns an empty vector when nothing is held. Call repeatedly until
    /// empty to flush.
    pub fn take_ready(&mut self) -> Vec<PendingDrive> {
        let out = std::mem::take(&mut self.ready);
        // Re-admit deferred drives in order under a fresh epoch; drives
        // conflicting among themselves defer again.
        let deferred = std::mem::take(&mut self.deferred);
        self.epoch += 1;
        for drive in deferred {
            let (a, b) = (drive.window.a.index(), drive.window.b.index());
            if self.uses(a) || self.uses(b) {
                self.deferred.push(drive);
            } else {
                self.ready.push(drive);
            }
            self.mark(a);
            self.mark(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::ContactWindow;
    use crate::time::Time;
    use crate::types::NodeId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn drive(seq: u64, a: u32, b: u32) -> PendingDrive {
        PendingDrive {
            window: ContactWindow::instant(Time::from_secs(seq), NodeId(a), NodeId(b), 1),
            now: Time::from_secs(seq),
            budget: 1,
            seq,
            measured: true,
        }
    }

    #[test]
    fn batcher_groups_disjoint_and_defers_conflicts() {
        let mut b = Batcher::new(10, 64);
        b.push(drive(0, 0, 1));
        b.push(drive(1, 2, 3)); // disjoint → same batch
        b.push(drive(2, 1, 4)); // conflicts with (0,1) → deferred
        b.push(drive(3, 4, 5)); // conflicts with deferred (1,4) → deferred
        b.push(drive(4, 6, 7)); // disjoint from everything held → ready
        let first: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(first, vec![0, 1, 4]);
        let second: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(second, vec![2], "deferred drives stay in scan order");
        let third: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(third, vec![3]);
        assert!(b.is_empty());
        assert!(b.take_ready().is_empty());
    }

    #[test]
    fn batcher_lookahead_bounds_held_drives() {
        let mut b = Batcher::new(100, 4);
        for i in 0..4 {
            assert!(!b.full());
            b.push(drive(i, 2 * i as u32, 2 * i as u32 + 1));
        }
        assert!(b.full());
    }

    #[test]
    fn pool_runs_every_index_once() {
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, 4);
            let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
            for round in 0..10 {
                pool.run(hits.len(), &|worker, i| {
                    assert!(worker < 4);
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for h in &hits {
                    assert_eq!(h.load(Ordering::Relaxed), round + 1);
                }
            }
        });
    }

    #[test]
    fn pool_single_worker_runs_inline() {
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, 1);
            let mut seen = Vec::new();
            let cell = std::sync::Mutex::new(&mut seen);
            pool.run(5, &|worker, i| {
                assert_eq!(worker, 0);
                cell.lock().unwrap().push(i);
            });
            assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn slice_partition_hands_out_disjoint_pairs() {
        let mut data = vec![0u32; 8];
        let part = SlicePartition::new(&mut data);
        // SAFETY: indices are disjoint.
        let (a, b) = unsafe { part.pair_mut(1, 6) };
        *a = 10;
        *b = 60;
        let c = unsafe { part.get_mut(3) };
        *c = 30;
        assert_eq!(data, vec![0, 10, 0, 30, 0, 0, 60, 0]);
    }

    #[test]
    fn intra_jobs_default_is_serial() {
        // The knob is read by harness code; unset it means 1.
        assert!(intra_jobs_from_env() >= 1);
    }
}
