//! Intra-run parallel execution: the conservative batch scheduler's worker
//! pool and the unsafe-but-contracted splitting primitives it runs on.
//!
//! The engine's event stream is inherently sequential — events commit in
//! the documented `(time, rank, seq)` order — but most of the *work* is
//! driven contacts, and a contact only touches per-endpoint state (its two
//! node buffers, its two protocol states) plus per-packet facts that are
//! exclusive to it (see `driver.rs`). Contacts whose node sets are
//! disjoint therefore commute, and the engine exploits that with a
//! conservative parallel discrete-event layer:
//!
//! 1. [`Batcher`] scans the merged event stream over a bounded lookahead
//!    window ([`Lookahead`], adaptive by default) and greedily groups
//!    contact drives with pairwise-disjoint node sets; a drive that
//!    conflicts with anything already grouped is *deferred* to a later
//!    pass (never reordered against a conflicting drive). Any non-contact
//!    event (creation, TTL expiry, churn) is a barrier: every pending
//!    drive executes before it.
//! 2. [`ContactPool`] executes one batch across `RAPID_INTRA_JOBS` workers
//!    (scoped threads; the caller participates, so `jobs = 1` never
//!    spawns). Indices are pre-partitioned into per-worker deques and
//!    rebalanced by steal-half work stealing, so one slow contact cannot
//!    idle the other workers behind a shared cursor.
//! 3. The engine commits results — report accounting, holder-table ops,
//!    `on_contact_end` hooks — serially, in the scan order.
//!
//! Determinism argument: the scan itself follows the serial drain order
//! (so noise draws, suppression checks and contact sequence numbers are
//! identical to the serial engine); batch members are pairwise
//! node-disjoint, and a deferred drive is only ever executed *after*
//! every earlier drive it conflicts with; all cross-contact effects
//! (holder sets, delivered-at facts, report sums) commute across
//! node-disjoint contacts. `RAPID_INTRA_JOBS=1` (the default) bypasses
//! this module entirely — byte-identical by construction, not by
//! argument.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a routing protocol's contact handler may be scheduled within one
/// run (see [`crate::routing::Routing::contact_concurrency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactConcurrency {
    /// Contacts must be driven one at a time, in event order (the
    /// default; always correct).
    Serial,
    /// Contacts whose node sets are disjoint may be driven concurrently:
    /// the protocol promises that `on_contact` / `on_contact_end` touch
    /// only per-endpoint protocol state (plus the driver), and that any
    /// randomness is derived from the driver's contact sequence number
    /// rather than a shared stream.
    NodeDisjoint,
    /// [`ContactConcurrency::NodeDisjoint`], plus: two identically-built
    /// instances of the protocol are interchangeable — every observable
    /// decision is a pure function of `(config, driver)`, with no
    /// instance state that evolves across contacts (lazy per-contact
    /// RNG substreams and per-call derived streams are fine; a
    /// persistent mutated stream is not). This is the contract the
    /// sharded runtime ([`crate::shard`]) needs: each shard drives its
    /// own instance and the results must match one instance driving
    /// everything.
    Stateless,
}

impl ContactConcurrency {
    /// Whether node-disjoint contacts may be driven concurrently within
    /// one instance (the intra-run batch scheduler's gate).
    pub fn is_node_disjoint(self) -> bool {
        matches!(self, Self::NodeDisjoint | Self::Stateless)
    }

    /// Stable snake-case label for telemetry columns (the per-shard
    /// timing TSV's `concurrency` field).
    pub fn label(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::NodeDisjoint => "node_disjoint",
            Self::Stateless => "stateless",
        }
    }
}

impl std::fmt::Display for ContactConcurrency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// The strict knob-parsing helpers began life here; re-exported from
// their consolidated home for compatibility.
pub use crate::env::{intra_jobs_from_env, jobs_from_env, parse_jobs};

/// The batch scheduler's lookahead policy: how many contact drives the
/// [`Batcher`] may hold before a flush is forced.
///
/// The bound trades batch width (more lookahead → wider node-disjoint
/// groups → better worker utilization) against flush latency and
/// conflict churn. `Adaptive` starts at `min` and resizes itself from
/// observed conflict rates: a capacity-triggered flush whose window was
/// conflict-free doubles the bound, a conflict-heavy window (deferred
/// drives ≥ ¼ of held) halves it. Adaptation depends only on the serial
/// drive stream, never on worker timing, so any policy at any
/// `RAPID_INTRA_JOBS` commits byte-identical results — the policy moves
/// only *where* the flush boundaries fall, and node-disjoint drives
/// commute across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookahead {
    /// Flush after exactly `n` held drives (the pre-adaptive behavior;
    /// `Fixed(1024)` reproduces it).
    Fixed(usize),
    /// Self-sizing bound within `[min, max]`.
    Adaptive { min: usize, max: usize },
}

/// Default adaptive floor: small enough that conflict-heavy workloads
/// (hub topologies) flush promptly.
pub const LOOKAHEAD_MIN: usize = 64;
/// Default adaptive ceiling: wide enough to feed every worker on
/// conflict-free scale shapes.
pub const LOOKAHEAD_MAX: usize = 8192;

impl Default for Lookahead {
    fn default() -> Self {
        Lookahead::Adaptive {
            min: LOOKAHEAD_MIN,
            max: LOOKAHEAD_MAX,
        }
    }
}

impl Lookahead {
    /// Parses a `RAPID_LOOKAHEAD` value: `adaptive` (the default) or a
    /// fixed positive drive count. Anything else is an error.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(Self::default()),
            Some("adaptive") => Ok(Self::default()),
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Lookahead::Fixed(n)),
                _ => Err(format!(
                    "invalid RAPID_LOOKAHEAD value {v:?}: expected \"adaptive\" or a positive drive count"
                )),
            },
        }
    }

    /// [`Lookahead::parse`] over the `RAPID_LOOKAHEAD` environment knob;
    /// invalid values abort with a clear message.
    pub fn from_env() -> Self {
        crate::env::from_env_or("RAPID_LOOKAHEAD", Self::default(), |v| Self::parse(Some(v)))
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A raw reference to the batch task, stored type-erased so worker threads
/// can pick it up. Validity: only dereferenced for indices of the current
/// generation, all of which complete before [`ContactPool::run`] returns.
struct TaskRef(*const (dyn Fn(usize, usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls are safe) and the pointer is
// only dereferenced while `run` keeps the referent alive (see above).
unsafe impl Send for TaskRef {}

struct PoolState {
    /// Monotone batch counter; workers wake when it advances.
    generation: u64,
    /// Highest generation fully completed (all `n` indices executed and
    /// every drainer left). Guarded by the mutex: once set, late-waking
    /// workers skip the generation entirely.
    completed: u64,
    /// The current batch task and its index count. The pointer is only
    /// dereferenced after a successful index claim, which can only happen
    /// while [`ContactPool::run`] is still blocked on this generation.
    task: Option<TaskRef>,
    n: usize,
    /// Workers currently inside the drain loop of the current generation.
    /// `run` does not return (and no later generation can reuse the
    /// deques) until this reaches zero — which is what makes the raw task
    /// pointer and the shared atomics sound across generations.
    active: usize,
    shutdown: bool,
}

/// One worker's deque of unclaimed batch indices, packed
/// `(next << 32) | end` into a single atomic word so the owner's
/// pop-front and a thief's steal-half are both one CAS — no separate
/// next/end words that could tear.
///
/// Invariant: slot value `(next, end)` means exactly the indices
/// `next..end` are unclaimed and owned by this slot. Every successful
/// CAS transition transfers a suffix (steal) or the front index (pop)
/// out of the slot, so a compare on the packed value is also a claim on
/// the range it describes — the value *is* the resource, which is what
/// makes the single-word CAS ABA-safe.
///
/// Padded to a cache line so workers hammering their own slots don't
/// false-share.
#[repr(align(64))]
struct Deque(AtomicU64);

#[inline]
fn pack(next: u32, end: u32) -> u64 {
    ((next as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    work: Condvar,
    /// The caller waits here for batch completion.
    done_cv: Condvar,
    /// Per-worker index deques for the current batch (work stealing).
    deques: Vec<Deque>,
    /// Indices completed within the current batch.
    done: AtomicUsize,
}

/// Drains batch work as `worker`: pop-front from the own deque, then
/// steal the upper half of the first non-empty victim (scanned in a
/// deterministic ring order) into the own deque, until no work is
/// visible anywhere.
///
/// A worker never leaves while its own deque is non-empty, and stolen
/// ranges are installed into the thief's own deque before execution —
/// so an exit scan that races a steal-in-flight can at worst miss a
/// *stealing opportunity* (mild imbalance), never an index: every
/// unclaimed index is always owned by some worker's deque, and its
/// owner drains it before leaving. Completion is still counted exactly
/// by `done`.
fn drain_batch(shared: &PoolShared, worker: usize, task: &(dyn Fn(usize, usize) + Sync)) {
    let jobs = shared.deques.len();
    'work: loop {
        // Own deque, front to back.
        let own = &shared.deques[worker].0;
        loop {
            let cur = own.load(Ordering::Acquire);
            let (next, end) = unpack(cur);
            if next >= end {
                break;
            }
            if own
                .compare_exchange_weak(
                    cur,
                    pack(next + 1, end),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                task(worker, next as usize);
                shared.done.fetch_add(1, Ordering::AcqRel);
            }
        }
        // Own deque empty: steal half from the ring.
        for off in 1..jobs {
            let victim = &shared.deques[(worker + off) % jobs].0;
            loop {
                let cur = victim.load(Ordering::Acquire);
                let (next, end) = unpack(cur);
                if next >= end {
                    break;
                }
                // Upper half, rounded up (a single leftover index is
                // stolen whole).
                let mid = next + (end - next) / 2;
                if victim
                    .compare_exchange_weak(
                        cur,
                        pack(next, mid),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // Only the owner installs into its own deque, and
                    // only while it is empty — a plain store cannot race
                    // a steal (thieves CAS from a non-empty snapshot).
                    own.store(pack(mid, end), Ordering::Release);
                    continue 'work;
                }
            }
        }
        return; // every deque observed empty
    }
}

/// A run-scoped worker pool executing index-addressed batch tasks.
///
/// `run(n, task)` calls `task(worker, index)` for every `index in 0..n`,
/// spreading indices over `jobs` workers (`worker in 0..jobs`; worker 0 is
/// the calling thread). Per-worker scratch state can safely be indexed by
/// `worker`. The pool is started inside a [`std::thread::scope`] by the
/// engine, so no thread outlives the run; dropping the pool shuts the
/// workers down.
pub struct ContactPool {
    shared: Arc<PoolShared>,
    jobs: usize,
}

impl ContactPool {
    /// Starts `jobs - 1` workers on `scope` (the caller is worker 0).
    pub fn start<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        jobs: usize,
    ) -> Self {
        assert!(jobs >= 1, "need at least the calling worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                completed: 0,
                task: None,
                n: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done_cv: Condvar::new(),
            deques: (0..jobs).map(|_| Deque(AtomicU64::new(0))).collect(),
            done: AtomicUsize::new(0),
        });
        for worker in 1..jobs {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared, worker));
        }
        Self { shared, jobs }
    }

    /// Number of workers, including the calling thread. Protocols size
    /// per-worker scratch tables off this.
    pub fn workers(&self) -> usize {
        self.jobs
    }

    /// Executes `task(worker, index)` for every `index in 0..n` and
    /// returns when all calls completed. Calls for distinct indices may
    /// run concurrently on distinct workers; `task` must therefore only
    /// touch state that is disjoint per index (plus per-worker scratch).
    pub fn run(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.jobs == 1 || n == 1 {
            for i in 0..n {
                task(0, i);
            }
            return;
        }
        assert!(n <= u32::MAX as usize, "batch too large for packed deques");
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            // No drainer of an earlier generation can be live here: `run`
            // only returned once `active == 0`, and workers re-enter the
            // drain only for a fresh, uncompleted generation.
            self.shared.done.store(0, Ordering::Relaxed);
            // Seed the deques with an even contiguous partition of 0..n;
            // work stealing rebalances from there.
            let (base, rem) = (n / self.jobs, n % self.jobs);
            let mut start = 0u32;
            for (w, deque) in self.shared.deques.iter().enumerate() {
                let end = start + base as u32 + u32::from(w < rem);
                deque.0.store(pack(start, end), Ordering::Relaxed);
                start = end;
            }
            // SAFETY: lifetime erasure only — the pointer is dereferenced
            // solely for indices of this generation, all of which complete
            // before `run` returns (the completion wait below).
            let erased: &'static (dyn Fn(usize, usize) + Sync) =
                unsafe { std::mem::transmute(task) };
            state.task = Some(TaskRef(erased as *const _));
            state.n = n;
            state.generation += 1;
        }
        self.shared.work.notify_all();

        // The caller participates as worker 0 (through the safe
        // reference; worker threads go through the claimed-index raw
        // pointer path, see `worker_loop`).
        drain_batch(&self.shared, 0, task);

        // Wait until every index completed AND every worker has left the
        // drain loop; only then may the task reference die or the atomics
        // be reused. Marking the generation completed under the same lock
        // hold makes late-waking workers skip it entirely.
        let mut state = self.shared.state.lock().expect("pool lock");
        while self.shared.done.load(Ordering::Acquire) < n || state.active > 0 {
            state = self.shared.done_cv.wait(state).expect("pool wait");
        }
        state.completed = state.generation;
    }
}

impl Drop for ContactPool {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut last_seen = 0u64;
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation > last_seen {
                    if state.completed >= state.generation {
                        // Woke after the batch already finished: skip it.
                        last_seen = state.generation;
                    } else {
                        break;
                    }
                }
                state = shared.work.wait(state).expect("pool wait");
            }
            last_seen = state.generation;
            state.active += 1;
            state.task.as_ref().expect("live generation has a task").0
        };
        // SAFETY: while this worker counts as `active`, `run` is still
        // blocked on this generation (it waits for done == n and
        // active == 0), so the referent is alive.
        let task: &(dyn Fn(usize, usize) + Sync) = unsafe { &*task };
        drain_batch(shared, worker, task);
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        drop(state);
        shared.done_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Disjoint-access primitives
// ---------------------------------------------------------------------------

/// A shareable view of a mutable slice that hands out `&mut` references to
/// *disjoint* elements across threads.
///
/// This is the standard disjoint-indices pattern: the engine's batch
/// scheduler guarantees that concurrently-executing contacts address
/// pairwise-disjoint node (and scratch/driver) indices, which is exactly
/// the contract the unsafe accessors require. All accessors are `unsafe`
/// because that disjointness lives outside the type system.
pub struct SlicePartition<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the partition only yields disjoint `&mut T` under the caller's
// contract; sending/sharing the view itself carries no aliasing.
unsafe impl<T: Send> Send for SlicePartition<'_, T> {}
unsafe impl<T: Send> Sync for SlicePartition<'_, T> {}

impl<'a, T> SlicePartition<'a, T> {
    /// Wraps a slice for disjoint-index access.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    /// No other live reference (from this partition or elsewhere) may
    /// address `i` for the lifetime of the returned borrow.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        &mut *self.ptr.add(i)
    }

    /// Exclusive access to two distinct elements.
    ///
    /// # Safety
    /// As [`SlicePartition::get_mut`], for both indices.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn pair_mut(&self, i: usize, j: usize) -> (&mut T, &mut T) {
        assert_ne!(i, j, "pair indices must be distinct");
        (self.get_mut(i), self.get_mut(j))
    }

    /// Exclusive access to the contiguous subslice `r` — how the sharded
    /// runtime leases each shard's node range of a single protocol
    /// instance's per-node state to one worker.
    ///
    /// # Safety
    /// As [`SlicePartition::get_mut`], for every index in `r`: no other
    /// live reference may address any of them for the borrow's lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, r: std::ops::Range<usize>) -> &mut [T] {
        assert!(
            r.start <= r.end && r.end <= self.len,
            "range {r:?} out of bounds ({})",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.end - r.start)
    }
}

/// A shareable mutable view of a slice whose *per-index exclusivity* is
/// guaranteed by the batch contract rather than the borrow checker — used
/// for the engine's `delivered_at` table, where a packet's slot is only
/// ever touched by the (single, per batch) contact involving the packet's
/// destination.
pub struct RawSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for RawSlice<'_, T> {}
unsafe impl<T: Send> Sync for RawSlice<'_, T> {}

impl<'a, T: Copy> RawSlice<'a, T> {
    /// Wraps a slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// A second handle onto the same slice (for another batch member).
    pub fn share(&self) -> Self {
        Self {
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No concurrent writer may address `i` (batch contract).
    pub unsafe fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// No concurrent reader or writer may address `i` (batch contract).
    pub unsafe fn set(&self, i: usize, value: T) {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        *self.ptr.add(i) = value;
    }
}

// ---------------------------------------------------------------------------
// Batch grouping
// ---------------------------------------------------------------------------

/// One contact drive pending batch execution; built by the engine's scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDrive {
    /// The window being driven.
    pub window: crate::contact::ContactWindow,
    /// The drive instant (window close, or start for instantaneous).
    pub now: crate::time::Time,
    /// Per-direction byte budget.
    pub budget: u64,
    /// Contact sequence number in serial scan order (drives the
    /// per-contact RNG substreams of randomized protocols).
    pub seq: u64,
    /// Whether this contact falls in the measured span.
    pub measured: bool,
}

/// Greedy conflict-free grouping of contact drives (see the module docs).
///
/// Drives are `push`ed in serial scan order. A drive whose node set is
/// disjoint from everything currently held joins the *ready* set; a
/// conflicting drive is *deferred*. [`Batcher::take_ready_into`] yields
/// the ready set for execution and promotes deferred drives (in order,
/// again conflict-checked) into the next ready set, so two conflicting
/// drives always execute in scan order, across distinct passes.
#[derive(Debug)]
pub struct Batcher {
    ready: Vec<PendingDrive>,
    deferred: Vec<PendingDrive>,
    /// Epoch-stamped membership: `stamp[node] == epoch` means some held
    /// drive (ready or deferred) uses the node.
    stamp: Vec<u64>,
    epoch: u64,
    policy: Lookahead,
    /// Current flush bound (fixed, or the adaptive policy's live value).
    lookahead: usize,
}

impl Batcher {
    /// A batcher for `nodes` node ids under the given lookahead policy
    /// (bounding the drives held before a flush is forced).
    pub fn new(nodes: usize, policy: Lookahead) -> Self {
        let lookahead = match policy {
            Lookahead::Fixed(n) => n.max(1),
            Lookahead::Adaptive { min, .. } => min.max(1),
        };
        Self {
            ready: Vec::new(),
            deferred: Vec::new(),
            stamp: vec![0; nodes],
            epoch: 0,
            policy,
            lookahead,
        }
    }

    /// The current flush bound (observable for tests and diagnostics).
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Number of drives currently held (ready + deferred).
    pub fn held(&self) -> usize {
        self.ready.len() + self.deferred.len()
    }

    /// Whether the lookahead bound is reached and a flush is due.
    pub fn full(&self) -> bool {
        self.held() >= self.lookahead
    }

    /// Whether no drives are held.
    pub fn is_empty(&self) -> bool {
        self.held() == 0
    }

    fn uses(&self, node: usize) -> bool {
        self.stamp[node] == self.epoch
    }

    fn mark(&mut self, node: usize) {
        self.stamp[node] = self.epoch;
    }

    /// Adds a drive in scan order.
    pub fn push(&mut self, drive: PendingDrive) {
        if self.is_empty() {
            self.epoch += 1;
        }
        let (a, b) = (drive.window.a.index(), drive.window.b.index());
        if self.uses(a) || self.uses(b) {
            self.deferred.push(drive);
        } else {
            self.ready.push(drive);
        }
        self.mark(a);
        self.mark(b);
    }

    /// Takes the ready set (pairwise node-disjoint, scan-ordered) into
    /// `out` for execution, then promotes deferred drives into the next
    /// ready set. Leaves `out` empty when nothing is held. Call
    /// repeatedly until empty to flush.
    ///
    /// Allocation-free in steady state: `out`'s storage is swapped with
    /// the internal ready vector (capacities ping-pong between the two),
    /// and the deferred list is compacted in place.
    ///
    /// An adaptive policy resizes itself here, exactly when the flush was
    /// capacity-triggered (`full()` on entry): a window with no conflicts
    /// doubles the bound, a conflict-heavy one (deferred ≥ ¼ of held)
    /// halves it. The decision reads only the held drives — a pure
    /// function of the serial drive stream, independent of worker count
    /// and timing.
    pub fn take_ready_into(&mut self, out: &mut Vec<PendingDrive>) {
        if self.full() {
            if let Lookahead::Adaptive { min, max } = self.policy {
                if self.deferred.is_empty() {
                    self.lookahead = (self.lookahead * 2).min(max.max(1));
                } else if self.deferred.len() * 4 >= self.held() {
                    self.lookahead = (self.lookahead / 2).max(min.max(1));
                }
            }
        }
        out.clear();
        std::mem::swap(&mut self.ready, out);
        // Re-admit deferred drives in order under a fresh epoch; drives
        // conflicting among themselves defer again (compacted in place —
        // the write index never passes the read index).
        self.epoch += 1;
        let mut kept = 0;
        for idx in 0..self.deferred.len() {
            let drive = self.deferred[idx];
            let (a, b) = (drive.window.a.index(), drive.window.b.index());
            if self.uses(a) || self.uses(b) {
                self.deferred[kept] = drive;
                kept += 1;
            } else {
                self.ready.push(drive);
            }
            self.mark(a);
            self.mark(b);
        }
        self.deferred.truncate(kept);
    }

    /// [`Batcher::take_ready_into`] returning a fresh vector (test and
    /// small-call convenience; the engine uses the reusable form).
    pub fn take_ready(&mut self) -> Vec<PendingDrive> {
        let mut out = Vec::new();
        self.take_ready_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::ContactWindow;
    use crate::time::Time;
    use crate::types::NodeId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn drive(seq: u64, a: u32, b: u32) -> PendingDrive {
        PendingDrive {
            window: ContactWindow::instant(Time::from_secs(seq), NodeId(a), NodeId(b), 1),
            now: Time::from_secs(seq),
            budget: 1,
            seq,
            measured: true,
        }
    }

    #[test]
    fn batcher_groups_disjoint_and_defers_conflicts() {
        let mut b = Batcher::new(10, Lookahead::Fixed(64));
        b.push(drive(0, 0, 1));
        b.push(drive(1, 2, 3)); // disjoint → same batch
        b.push(drive(2, 1, 4)); // conflicts with (0,1) → deferred
        b.push(drive(3, 4, 5)); // conflicts with deferred (1,4) → deferred
        b.push(drive(4, 6, 7)); // disjoint from everything held → ready
        let first: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(first, vec![0, 1, 4]);
        let second: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(second, vec![2], "deferred drives stay in scan order");
        let third: Vec<u64> = b.take_ready().iter().map(|d| d.seq).collect();
        assert_eq!(third, vec![3]);
        assert!(b.is_empty());
        assert!(b.take_ready().is_empty());
    }

    #[test]
    fn batcher_lookahead_bounds_held_drives() {
        let mut b = Batcher::new(100, Lookahead::Fixed(4));
        for i in 0..4 {
            assert!(!b.full());
            b.push(drive(i, 2 * i as u32, 2 * i as u32 + 1));
        }
        assert!(b.full());
    }

    #[test]
    fn adaptive_lookahead_grows_when_conflict_free_and_shrinks_under_conflicts() {
        let mut b = Batcher::new(100, Lookahead::Adaptive { min: 4, max: 16 });
        assert_eq!(b.lookahead(), 4);
        // Conflict-free capacity flush: the bound doubles.
        for i in 0..4 {
            b.push(drive(i, 2 * i as u32, 2 * i as u32 + 1));
        }
        assert!(b.full());
        while !b.is_empty() {
            b.take_ready();
        }
        assert_eq!(b.lookahead(), 8);
        // Conflict-heavy capacity flush (every drive shares node 0): the
        // bound halves again, and never below the floor.
        for round in 0..4 {
            for i in 0..b.lookahead() as u64 {
                b.push(drive(i, 0, 1 + i as u32));
            }
            assert!(b.full());
            while !b.is_empty() {
                b.take_ready();
            }
            assert!(b.lookahead() >= 4, "round {round} went below the floor");
        }
        assert_eq!(b.lookahead(), 4);
        // Barrier flushes (not full) never adapt.
        b.push(drive(0, 50, 51));
        while !b.is_empty() {
            b.take_ready();
        }
        assert_eq!(b.lookahead(), 4);
    }

    #[test]
    fn take_ready_into_reuses_storage() {
        let mut b = Batcher::new(10, Lookahead::Fixed(64));
        let mut out = Vec::with_capacity(8);
        for round in 0..5u64 {
            b.push(drive(round, 0, 1));
            b.push(drive(round, 2, 3));
            b.take_ready_into(&mut out);
            assert_eq!(out.len(), 2);
            assert!(out.capacity() >= 2, "swapped storage keeps usable capacity");
            assert!(b.is_empty());
        }
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        assert_eq!(parse_jobs("RAPID_INTRA_JOBS", "1"), Ok(1));
        assert_eq!(parse_jobs("RAPID_INTRA_JOBS", " 8 "), Ok(8));
        assert!(parse_jobs("RAPID_INTRA_JOBS", "0")
            .unwrap_err()
            .contains("must be >= 1"));
        for bad in ["", "four", "-2", "1.5"] {
            assert!(
                parse_jobs("RAPID_JOBS", bad)
                    .unwrap_err()
                    .contains("positive integer"),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn lookahead_parse_is_strict() {
        assert_eq!(Lookahead::parse(None), Ok(Lookahead::default()));
        assert_eq!(Lookahead::parse(Some("adaptive")), Ok(Lookahead::default()));
        assert_eq!(Lookahead::parse(Some("1024")), Ok(Lookahead::Fixed(1024)));
        for bad in ["0", "", "fast", "-1"] {
            assert!(Lookahead::parse(Some(bad)).is_err(), "{bad:?} must error");
        }
    }

    #[test]
    fn pool_steals_across_uneven_work() {
        // Front-loaded work: the initial even partition gives worker 0 all
        // the slow indices; completion requires stealing to have spread
        // them without losing or duplicating any index.
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, 4);
            let hits: Vec<AtomicUsize> = (0..256).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), &|_, i| {
                if i < 64 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} ran once");
            }
        });
    }

    #[test]
    fn pool_runs_every_index_once() {
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, 4);
            let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
            for round in 0..10 {
                pool.run(hits.len(), &|worker, i| {
                    assert!(worker < 4);
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for h in &hits {
                    assert_eq!(h.load(Ordering::Relaxed), round + 1);
                }
            }
        });
    }

    #[test]
    fn pool_single_worker_runs_inline() {
        std::thread::scope(|scope| {
            let pool = ContactPool::start(scope, 1);
            let mut seen = Vec::new();
            let cell = std::sync::Mutex::new(&mut seen);
            pool.run(5, &|worker, i| {
                assert_eq!(worker, 0);
                cell.lock().unwrap().push(i);
            });
            assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn slice_partition_hands_out_disjoint_pairs() {
        let mut data = vec![0u32; 8];
        let part = SlicePartition::new(&mut data);
        // SAFETY: indices are disjoint.
        let (a, b) = unsafe { part.pair_mut(1, 6) };
        *a = 10;
        *b = 60;
        let c = unsafe { part.get_mut(3) };
        *c = 30;
        assert_eq!(data, vec![0, 10, 0, 30, 0, 0, 60, 0]);
    }

    #[test]
    fn intra_jobs_default_is_serial() {
        // The knob is read by harness code; unset it means 1.
        assert!(intra_jobs_from_env() >= 1);
    }
}
