//! The typed discrete-event core: event kinds, the deterministic event
//! queue, and node-churn records.
//!
//! The engine drains a single binary-heap queue of [`SimEvent`]s instead of
//! merging per-kind streams by hand, which is what lets one loop host
//! durative contact windows, TTL expiry and node churn at once. Determinism
//! is part of the contract: the drain order is a total order, documented
//! below, so identical inputs replay identically.
//!
//! # Tie-break order
//!
//! Events at the same instant are processed in ascending *rank*:
//!
//! | rank | event | why this position |
//! |------|-------|-------------------|
//! | 0 | [`SimEvent::NodeUp`] | a node returning is available to everything else at this instant |
//! | 1 | [`SimEvent::PacketExpired`] | TTL eviction precedes any transfer at the expiry instant — an expired packet does not ride a same-instant contact |
//! | 2 | [`SimEvent::ContactEnd`] | a closing window is driven with its accrued budget before any new window opens |
//! | 3 | [`SimEvent::ContactStart`] | instantaneous windows transfer here; precedes creations so a packet created at the moment of a meeting does not ride it (the seed semantics) |
//! | 4 | [`SimEvent::PacketCreated`] | after contacts, see above |
//! | 5 | [`SimEvent::NodeDown`] | a node serves every same-instant event, then leaves |
//!
//! Events with equal `(time, rank)` drain in insertion (FIFO) order, so
//! equal-time contacts keep their schedule order and equal-time creations
//! keep their workload order — exactly what the seed's stable sorts
//! guaranteed.

use crate::time::Time;
use crate::types::{NodeId, PacketId};
use std::collections::BinaryHeap;

/// Index of a window within a [`crate::contact::Schedule`].
pub type WindowIdx = usize;

/// Index of a spec within a [`crate::workload::Workload`].
pub type SpecIdx = usize;

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A churned node comes back up.
    NodeUp(NodeId),
    /// A packet reaches its TTL: every replica is evicted.
    PacketExpired(PacketId),
    /// A durative contact window closes; the protocol is driven with the
    /// window's accrued budget.
    ContactEnd(WindowIdx),
    /// A contact window opens. Instantaneous windows are driven here.
    ContactStart(WindowIdx),
    /// A workload packet is created at its source.
    PacketCreated(SpecIdx),
    /// A node goes down: its active windows are interrupted (driven with
    /// the capacity accrued so far) and future windows involving it are
    /// suppressed until it comes back up.
    NodeDown(NodeId),
}

impl SimEvent {
    /// Same-instant processing rank (see the module docs).
    pub fn rank(&self) -> u8 {
        match self {
            SimEvent::NodeUp(_) => 0,
            SimEvent::PacketExpired(_) => 1,
            SimEvent::ContactEnd(_) => 2,
            SimEvent::ContactStart(_) => 3,
            SimEvent::PacketCreated(_) => 4,
            SimEvent::NodeDown(_) => 5,
        }
    }
}

/// One node availability transition (churn). Nodes start up; a `down`
/// transition interrupts the node's active contact windows and suppresses
/// new ones until the matching `up`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEvent {
    /// When the transition happens.
    pub time: Time,
    /// The node changing state.
    pub node: NodeId,
    /// `true` = comes up, `false` = goes down.
    pub up: bool,
}

/// A queued event with its total-order key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    time: Time,
    rank: u8,
    seq: u64,
    event: SimEvent,
}

// `BinaryHeap` is a max-heap; invert the comparison for earliest-first.
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.rank, other.seq).cmp(&(self.time, self.rank, self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue keyed by `(time, rank, insertion order)`.
///
/// Engine runs are seed-heavy: the whole schedule and workload are pushed
/// up front, then drained, with only a few events (TTL expiries) scheduled
/// dynamically. The queue exploits that shape: everything pushed before
/// the first pop becomes a *backbone* — stable-sorted once by
/// `(time, rank)` (stability preserves FIFO insertion order, so the sort
/// realizes exactly the `(time, rank, seq)` total order) and then drained
/// by cursor in O(1) per event. Events pushed after draining starts go to
/// a small overlay heap; `pop` takes the smaller of the two fronts. The
/// drain order is identical to a single priority queue over
/// `(time, rank, seq)` — the backbone holds strictly smaller `seq`s than
/// any overlay event, so equal `(time, rank)` keys drain backbone-first,
/// which is FIFO.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    /// Seed events; sorted at first pop, then immutable. `cursor` marks
    /// the drain position.
    backbone: Vec<Queued>,
    cursor: usize,
    sorted: bool,
    /// Events scheduled after draining began (e.g. TTL expiries).
    overlay: BinaryHeap<Queued>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: SimEvent) {
        let queued = Queued {
            time,
            rank: event.rank(),
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if self.sorted {
            self.overlay.push(queued);
        } else {
            self.backbone.push(queued);
        }
    }

    /// The `(time, rank)` key of the earliest pending event, without
    /// removing it. The streaming engine merges the queue against its
    /// pull-based sources on exactly this key (ranks are disjoint across
    /// the merged streams, so `(time, rank)` is decisive).
    pub fn peek_key(&mut self) -> Option<(Time, u8)> {
        self.sort_backbone();
        let backbone = self.backbone.get(self.cursor).map(|q| (q.time, q.rank));
        let overlay = self.overlay.peek().map(|q| (q.time, q.rank));
        match (backbone, overlay) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Removes and returns the earliest event (ties broken by rank, then
    /// insertion order).
    pub fn pop(&mut self) -> Option<(Time, SimEvent)> {
        self.sort_backbone();
        let backbone_next = self.backbone.get(self.cursor);
        let take_overlay = match (backbone_next, self.overlay.peek()) {
            (Some(b), Some(o)) => (o.time, o.rank, o.seq) < (b.time, b.rank, b.seq),
            (None, Some(_)) => true,
            _ => false,
        };
        if take_overlay {
            self.overlay.pop().map(|q| (q.time, q.event))
        } else {
            backbone_next.map(|q| {
                self.cursor += 1;
                (q.time, q.event)
            })
        }
    }

    /// Sorts the seed backbone on first access (see the type docs).
    fn sort_backbone(&mut self) {
        if !self.sorted {
            // Stable by construction: equal (time, rank) keep push order.
            self.backbone.sort_by_key(|q| (q.time, q.rank));
            self.sorted = true;
        }
    }

    /// Every pending event in drain order, without consuming the queue —
    /// the checkpoint capture. Replaying the returned pairs through
    /// [`EventQueue::from_events`] rebuilds a queue with the identical
    /// drain order (`seq` values are renumbered but their relative order,
    /// which is all the total order consumes, is preserved).
    pub fn snapshot_events(&self) -> Vec<(Time, SimEvent)> {
        let mut scratch = self.clone();
        std::iter::from_fn(|| scratch.pop()).collect()
    }

    /// Rebuilds a queue from [`EventQueue::snapshot_events`] output. The
    /// input must be in drain order (nondecreasing `(time, rank)`); pushes
    /// after restore interleave exactly as they would have in the original
    /// queue.
    pub fn from_events(events: impl IntoIterator<Item = (Time, SimEvent)>) -> Self {
        let mut queue = Self::new();
        for (time, event) in events {
            queue.push(time, event);
        }
        queue
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backbone.len() - self.cursor + self.overlay.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(5), SimEvent::ContactStart(0));
        q.push(Time::from_secs(1), SimEvent::PacketCreated(0));
        q.push(Time::from_secs(3), SimEvent::ContactStart(1));
        assert_eq!(q.len(), 3);
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(1), SimEvent::PacketCreated(0)))
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(3), SimEvent::ContactStart(1)))
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(5), SimEvent::ContactStart(0)))
        );
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn rank_orders_same_instant_events() {
        let t = Time::from_secs(10);
        let mut q = EventQueue::new();
        // Push in deliberately scrambled order.
        q.push(t, SimEvent::NodeDown(NodeId(0)));
        q.push(t, SimEvent::PacketCreated(0));
        q.push(t, SimEvent::ContactStart(0));
        q.push(t, SimEvent::ContactEnd(1));
        q.push(t, SimEvent::PacketExpired(PacketId(0)));
        q.push(t, SimEvent::NodeUp(NodeId(1)));
        let drained: Vec<SimEvent> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            drained,
            vec![
                SimEvent::NodeUp(NodeId(1)),
                SimEvent::PacketExpired(PacketId(0)),
                SimEvent::ContactEnd(1),
                SimEvent::ContactStart(0),
                SimEvent::PacketCreated(0),
                SimEvent::NodeDown(NodeId(0)),
            ]
        );
    }

    #[test]
    fn fifo_within_equal_time_and_rank() {
        let t = Time::from_secs(2);
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(t, SimEvent::ContactStart(i));
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t, SimEvent::ContactStart(i))));
        }
    }

    #[test]
    fn dynamic_pushes_interleave_with_seeded_events() {
        let mut q = EventQueue::new();
        // Seed (pre-drain) events.
        q.push(Time::from_secs(10), SimEvent::ContactStart(0));
        q.push(Time::from_secs(30), SimEvent::ContactStart(1));
        q.push(Time::from_secs(50), SimEvent::ContactStart(2));
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(10), SimEvent::ContactStart(0)))
        );
        // Scheduled mid-drain: earlier than, equal to (same rank — the
        // seeded event wins FIFO), and between remaining seed events.
        q.push(Time::from_secs(20), SimEvent::PacketExpired(PacketId(7)));
        q.push(Time::from_secs(30), SimEvent::ContactStart(9));
        q.push(Time::from_secs(40), SimEvent::NodeDown(NodeId(1)));
        assert_eq!(q.len(), 5);
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(20), SimEvent::PacketExpired(PacketId(7))))
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(30), SimEvent::ContactStart(1))),
            "equal (time, rank): seeded event drains first (FIFO)"
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(30), SimEvent::ContactStart(9)))
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(40), SimEvent::NodeDown(NodeId(1))))
        );
        assert_eq!(
            q.pop(),
            Some((Time::from_secs(50), SimEvent::ContactStart(2)))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_key_tracks_the_front_without_consuming() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(Time::from_secs(10), SimEvent::ContactStart(0));
        q.push(Time::from_secs(5), SimEvent::PacketCreated(0));
        assert_eq!(q.peek_key(), Some((Time::from_secs(5), 4)));
        assert_eq!(q.len(), 2, "peek must not consume");
        let _ = q.pop();
        // Overlay (post-drain) events participate in the peeked key.
        q.push(Time::from_secs(7), SimEvent::PacketExpired(PacketId(0)));
        assert_eq!(q.peek_key(), Some((Time::from_secs(7), 1)));
        let _ = q.pop();
        assert_eq!(q.peek_key(), Some((Time::from_secs(10), 3)));
    }
}
