//! The routing-protocol abstraction.
//!
//! A routing protocol in this model is the decision-maker the paper
//! describes in §3.4: when two nodes meet, it chooses which packets to
//! transfer within the opportunity, and when storage overflows it chooses
//! what to drop. The simulator owns all state that exists "in the world"
//! (packets, buffers, delivery facts); the protocol owns its *beliefs*
//! (meeting histories, replica metadata, ack knowledge) and is free to be
//! wrong about the world — exactly the situation §4.2 describes for RAPID's
//! delayed control channel.

use crate::buffer::NodeBuffer;
use crate::driver::ContactDriver;
use crate::par::{ContactConcurrency, ContactPool};
use crate::shard::Partition;
use crate::time::{Time, TimeDelta};
use crate::types::{NodeId, Packet, PacketId};

/// Simulation-wide configuration shared with protocols at init.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of nodes; ids are `0..nodes`.
    pub nodes: usize,
    /// Per-node in-transit buffer capacity in bytes (`u64::MAX` ≈ unlimited).
    pub buffer_capacity: u64,
    /// Delivery deadline used by the missed-deadline metric (Table 4).
    pub deadline: Option<TimeDelta>,
    /// End of the run. Packets not delivered by now are lost ("packets that
    /// are not delivered by the end of the day are lost", §6.1) and charged
    /// `horizon − creation` delay where a metric includes undelivered packets.
    pub horizon: Time,
    /// Per-packet time-to-live. When set, a packet that is not delivered
    /// within `ttl` of its creation is evicted from every buffer by the
    /// engine (a [`crate::event::SimEvent::PacketExpired`] event) and
    /// counted in [`crate::report::SimReport::expired`]. `None` (the
    /// default, and the paper's model) lets packets live to the horizon.
    pub ttl: Option<TimeDelta>,
    /// Whether protocols may read true global state via
    /// [`ContactDriver::global`]. Only the instant-global-channel variants
    /// (§6.2.3) and Optimal enable this.
    pub allow_global_knowledge: bool,
    /// Root seed for protocol-internal randomness.
    pub seed: u64,
    /// Contacts before this instant are executed (protocols learn from
    /// them) but excluded from the report's byte and contact accounting —
    /// used for warm-up windows that precede the measured experiment.
    pub measure_from: Time,
    /// Intra-run worker count for the conservative parallel contact layer
    /// (see [`crate::par`]). `1` (the default) is the serial engine —
    /// every other value still produces byte-identical results, but only
    /// takes effect for protocols that declare
    /// [`ContactConcurrency::NodeDisjoint`] on runs without global
    /// knowledge. Harness code plumbs `RAPID_INTRA_JOBS` in here
    /// ([`crate::par::intra_jobs_from_env`]).
    pub intra_jobs: usize,
    /// Lookahead policy for the batch scheduler (adaptive by default; any
    /// policy commits byte-identical results — see [`crate::par`]).
    /// Harness code plumbs `RAPID_LOOKAHEAD` in here
    /// ([`crate::par::Lookahead::from_env`]).
    pub lookahead: crate::par::Lookahead,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 0,
            buffer_capacity: u64::MAX,
            deadline: None,
            ttl: None,
            horizon: Time::from_hours(19),
            allow_global_knowledge: false,
            seed: 0,
            measure_from: Time::ZERO,
            intra_jobs: 1,
            lookahead: crate::par::Lookahead::default(),
        }
    }
}

/// Result of [`ContactDriver::try_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The peer was the destination and this was the first delivery.
    Delivered,
    /// The peer was the destination but the packet had already been
    /// delivered by some other replica (bandwidth was still spent).
    DeliveredDuplicate,
    /// A replica was stored at the peer.
    Replicated,
    /// The peer already holds a replica; nothing was sent.
    AlreadyHeld,
    /// The remaining opportunity in this direction is smaller than the
    /// packet (packets may not be fragmented, §3.1).
    NoBandwidth,
    /// The peer's buffer needs this many more free bytes; the caller may
    /// evict victims with [`ContactDriver::evict`] and retry.
    NeedsSpace(u64),
}

impl TransferOutcome {
    /// Whether bytes moved across the link.
    pub fn consumed_bandwidth(&self) -> bool {
        matches!(
            self,
            TransferOutcome::Delivered
                | TransferOutcome::DeliveredDuplicate
                | TransferOutcome::Replicated
        )
    }
}

/// A DTN routing protocol.
///
/// Implementations drive all packet movement through the [`ContactDriver`]
/// given to [`Routing::on_contact`]; the engine enforces feasibility (per
/// §3.1: total bytes per opportunity bounded by its size, buffers bounded by
/// capacity) regardless of what the protocol asks for.
pub trait Routing {
    /// Human-readable protocol name (used in reports and experiment output).
    fn name(&self) -> String;

    /// Called once before the run with the node count and configuration.
    fn on_init(&mut self, _config: &SimConfig) {}

    /// Called when `packet` has been created and stored at its source.
    fn on_packet_created(&mut self, _packet: &Packet) {}

    /// Called when a packet could not be stored at its source because the
    /// buffer was full even after [`Routing::make_room`].
    fn on_creation_dropped(&mut self, _packet: &Packet) {}

    /// Invoked when `incoming` (created at `node`) needs `needed` more free
    /// bytes at `node`. Returns the victims to evict; returning fewer bytes
    /// than `needed` rejects the incoming packet.
    ///
    /// The default rejects the incoming packet (drops nothing).
    fn make_room(
        &mut self,
        _node: NodeId,
        _incoming: &Packet,
        _needed: u64,
        _buffer: &NodeBuffer,
        _packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        Vec::new()
    }

    /// The heart of the protocol: a transfer opportunity between two nodes.
    ///
    /// For instantaneous contacts this fires at the meeting instant with the
    /// lump opportunity; for durative windows it fires when the window
    /// closes (or is interrupted by churn) with the accrued budget.
    fn on_contact(&mut self, driver: &mut ContactDriver<'_>);

    /// How this protocol's contacts may be scheduled within one run. The
    /// default, [`ContactConcurrency::Serial`], is always correct.
    /// Declaring [`ContactConcurrency::NodeDisjoint`] promises that
    /// [`Routing::on_contact`] / [`Routing::on_contact_end`] touch only
    /// per-endpoint protocol state (plus the driver), and that any
    /// randomness is derived from [`ContactDriver::contact_seq`] — which
    /// lets the engine drive node-disjoint contacts concurrently with
    /// byte-identical results (see [`crate::par`]).
    ///
    /// The promise extends to the per-node lifecycle hooks:
    /// [`Routing::make_room`], [`Routing::on_packet_created`] /
    /// [`Routing::on_creation_dropped`] and [`Routing::on_node_up`] /
    /// [`Routing::on_node_down`] may touch only the subject node's state.
    /// (Only [`Routing::on_packet_expired`] may read arbitrary nodes —
    /// the runtimes always execute it as a serial barrier.) This is what
    /// lets the sharded runtime ([`crate::shard`]) drain shard queues of
    /// a *single* `NodeDisjoint` instance in any shard order within an
    /// epoch: every queued action touches only state owned by its shard.
    fn contact_concurrency(&self) -> ContactConcurrency {
        ContactConcurrency::Serial
    }

    /// Executes a batch of pairwise node-disjoint contacts (only called
    /// when [`Routing::contact_concurrency`] declared
    /// [`ContactConcurrency::NodeDisjoint`] and the run enabled intra-run
    /// parallelism). The drivers are in scan (serial drive) order.
    ///
    /// The default runs them one by one on the calling thread — correct
    /// for any protocol, parallel for none. Protocols override it to
    /// spread the batch over `pool` (splitting their per-endpoint state
    /// with [`crate::par::SlicePartition`]); effects must be identical to
    /// driving the batch serially in order.
    fn on_contact_batch(&mut self, batch: &mut [ContactDriver<'_>], pool: &ContactPool) {
        let _ = pool;
        for driver in batch {
            self.on_contact(driver);
        }
    }

    /// Called after a contact window between `a` and `b` has been driven and
    /// closed. `interrupted` is true when churn cut the window short.
    /// Default: no-op (protocols that only care about transfers ignore it).
    fn on_contact_end(&mut self, _a: NodeId, _b: NodeId, _now: Time, _interrupted: bool) {}

    /// Drains one sharded-runtime epoch against this (single, shared)
    /// instance — the `NodeDisjoint` analogue of [`Routing::on_contact_batch`].
    ///
    /// Only called by [`crate::shard`] for protocols that declare
    /// [`ContactConcurrency::NodeDisjoint`] without the
    /// [`ContactConcurrency::Stateless`] instance-interchangeability
    /// promise: there is exactly one protocol instance, and the runtime
    /// asks it to split its per-node state along `partition` and drain
    /// every shard's action queue. The implementation must call
    /// `drain(s, view)` exactly once for every shard `s in
    /// 0..partition.shards()`, where `view` is a [`Routing`] value whose
    /// hooks address shard `s`'s node range of this instance's state;
    /// calls for distinct shards may run concurrently on `pool` because
    /// every queued action touches only its own shard's nodes (the
    /// extended `NodeDisjoint` contract).
    ///
    /// Returns whether the epoch was drained. The default returns `false`
    /// without calling `drain`: the runtime then drains every shard
    /// serially, in shard order, against this instance directly — correct
    /// for any `NodeDisjoint` protocol (intra-epoch actions of distinct
    /// shards commute), just without intra-epoch parallelism.
    fn on_shard_epoch(
        &mut self,
        partition: &Partition,
        pool: &ContactPool,
        drain: &(dyn Fn(usize, &mut dyn Routing) + Sync),
    ) -> bool {
        let _ = (partition, pool, drain);
        false
    }

    /// Called when the engine evicts every replica of `packet` because its
    /// TTL elapsed undelivered (see [`SimConfig::ttl`]). Beliefs about the
    /// packet may be stale afterwards — exactly like any other world event
    /// the §4.2 control channel has not yet propagated.
    fn on_packet_expired(&mut self, _packet: &Packet) {}

    /// Called when a churned node comes back up.
    fn on_node_up(&mut self, _node: NodeId, _now: Time) {}

    /// Called when a node goes down (after its active windows were
    /// interrupted and driven).
    fn on_node_down(&mut self, _node: NodeId, _now: Time) {}

    /// Serializes the protocol's internal state for a checkpoint, or
    /// `None` if the protocol does not implement state capture.
    ///
    /// Protocols declaring [`ContactConcurrency::Stateless`] are
    /// checkpointable without overriding this — instances are
    /// interchangeable, so there is nothing to save. Every *stateful*
    /// protocol must override both this and [`Routing::load_state`] to be
    /// usable on checkpointed runs: the checkpoint layer refuses to save
    /// otherwise (loudly), rather than silently resuming with amnesiac
    /// protocol beliefs.
    ///
    /// Derived caches may be omitted and rebuilt after restore, as long as
    /// the rebuilt values are bit-identical to what the uninterrupted run
    /// would have computed.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`Routing::save_state`] onto a freshly
    /// constructed instance ([`Routing::on_init`] has already run).
    /// Returns a descriptive error on malformed input.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "{} does not implement checkpoint restore",
            self.name()
        ))
    }
}

/// The immutable packet arena: every packet ever created this run, indexed
/// by [`PacketId`].
///
/// Metadata is stored as structure-of-arrays columns (src, dst, size,
/// creation time, TTL deadline) rather than a `Vec<Packet>`: protocol hot
/// paths that scan one attribute — destination checks in queue sorts,
/// size sums in eviction, age in delay estimates — touch only that
/// column's cache lines, and each attribute compacts to its natural width
/// instead of padding a 32-byte struct. [`PacketStore::get`] assembles a
/// [`Packet`] *by value* for the protocol-facing hooks that want the
/// whole tuple.
#[derive(Debug, Default, Clone)]
pub struct PacketStore {
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    size_bytes: Vec<u64>,
    created_at: Vec<Time>,
    /// Instant the packet expires (creation + TTL), or [`PacketStore::NO_TTL`]
    /// when the run has no TTL — a dense column so expiry checks never
    /// branch on an `Option`.
    ttl_deadline: Vec<Time>,
}

impl PacketStore {
    /// Sentinel deadline for packets without a TTL: the end of time.
    pub const NO_TTL: Time = Time(u64::MAX);

    /// Assembles the packet tuple by value.
    ///
    /// # Panics
    /// If the id is out of range (a protocol invented an id).
    pub fn get(&self, id: PacketId) -> Packet {
        let i = id.index();
        Packet {
            id,
            src: self.src[i],
            dst: self.dst[i],
            size_bytes: self.size_bytes[i],
            created_at: self.created_at[i],
        }
    }

    /// Source node of `id` (single-column read).
    pub fn src(&self, id: PacketId) -> NodeId {
        self.src[id.index()]
    }

    /// Destination node of `id` (single-column read).
    pub fn dst(&self, id: PacketId) -> NodeId {
        self.dst[id.index()]
    }

    /// Size in bytes of `id` (single-column read).
    pub fn size_bytes(&self, id: PacketId) -> u64 {
        self.size_bytes[id.index()]
    }

    /// Creation instant of `id` (single-column read).
    pub fn created_at(&self, id: PacketId) -> Time {
        self.created_at[id.index()]
    }

    /// Expiry instant of `id`: `Some(created_at + ttl)` on TTL runs,
    /// `None` otherwise.
    pub fn ttl_deadline(&self, id: PacketId) -> Option<Time> {
        let t = self.ttl_deadline[id.index()];
        (t != Self::NO_TTL).then_some(t)
    }

    /// Number of packets created so far.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether no packets exist yet.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// All packets, in creation (id) order, assembled by value.
    pub fn iter(&self) -> impl Iterator<Item = Packet> + '_ {
        (0..self.len()).map(|i| self.get(PacketId(i as u32)))
    }

    /// Appends a packet's columns and returns its id.
    pub(crate) fn push(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        created_at: Time,
        ttl_deadline: Time,
    ) -> PacketId {
        let id = PacketId(self.src.len() as u32);
        self.src.push(src);
        self.dst.push(dst);
        self.size_bytes.push(size_bytes);
        self.created_at.push(created_at);
        self.ttl_deadline.push(ttl_deadline);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_bandwidth_classification() {
        assert!(TransferOutcome::Delivered.consumed_bandwidth());
        assert!(TransferOutcome::DeliveredDuplicate.consumed_bandwidth());
        assert!(TransferOutcome::Replicated.consumed_bandwidth());
        assert!(!TransferOutcome::AlreadyHeld.consumed_bandwidth());
        assert!(!TransferOutcome::NoBandwidth.consumed_bandwidth());
        assert!(!TransferOutcome::NeedsSpace(5).consumed_bandwidth());
    }

    #[test]
    fn packet_store_roundtrip() {
        let mut s = PacketStore::default();
        assert!(s.is_empty());
        let id = s.push(NodeId(0), NodeId(1), 10, Time::ZERO, PacketStore::NO_TTL);
        assert_eq!(id, PacketId(0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id).dst, NodeId(1));
        assert_eq!(s.dst(id), NodeId(1));
        assert_eq!(s.src(id), NodeId(0));
        assert_eq!(s.size_bytes(id), 10);
        assert_eq!(s.created_at(id), Time::ZERO);
        assert_eq!(s.ttl_deadline(id), None);
        assert_eq!(s.iter().count(), 1);
        let with_ttl = s.push(NodeId(1), NodeId(0), 5, Time(3), Time(10));
        assert_eq!(s.ttl_deadline(with_ttl), Some(Time(10)));
    }

    #[test]
    fn default_config_is_unconstrained() {
        let c = SimConfig::default();
        assert_eq!(c.buffer_capacity, u64::MAX);
        assert!(!c.allow_global_knowledge);
    }
}
