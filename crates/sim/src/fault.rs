//! Fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] is a list of faults the runtime deliberately inflicts
//! on itself mid-run, so the checkpoint/resume machinery is exercised by
//! the test suite and the bench harness instead of waiting for a real
//! OOM-kill at hour six of a 12M-window run:
//!
//! * [`Fault::Crash`] — the event loop panics (a distinctive, greppable
//!   panic) the first time simulated time reaches `at`. The bench
//!   runner's retry loop catches it and resumes from the last good
//!   checkpoint, exactly as it would for a genuine worker panic.
//! * [`Fault::AbortWindow`] — a durative contact window is cut short at
//!   `at`, closing with only the capacity accrued by then (the same
//!   semantics as a churn interruption, but aimed at one window). This
//!   perturbs the schedule the way a flaky radio would, while keeping
//!   the run fully deterministic for a given plan.
//! * [`Fault::CorruptSnapshot`] — the checkpoint file with sequence
//!   number `seq` is damaged right after it is written (truncated or
//!   bit-flipped), so the resume path must detect the damage via the
//!   `RSNP1` checksums and fall back to the previous snapshot.
//!
//! Plans are either scheduled explicitly ([`FaultPlan::scheduled`]) or
//! drawn from a seeded RNG substream ([`FaultPlan::seeded`]) so fuzz-style
//! CI jobs stay reproducible.

use crate::event::WindowIdx;
use crate::time::Time;
use dtn_stats::stream;
use rand::Rng;
use std::path::Path;

/// How [`Fault::CorruptSnapshot`] damages the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptMode {
    /// Drop the second half of the file (a partial write / torn rename).
    Truncate,
    /// Flip one bit in the middle of the file (media corruption).
    BitFlip,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic the event loop when simulated time first reaches `at`.
    Crash {
        /// Simulated instant of the crash.
        at: Time,
    },
    /// Close durative window `idx` at `at` with the capacity accrued so
    /// far (ignored if the window is instantaneous or `at` is outside its
    /// span).
    AbortWindow {
        /// Pull-order index of the window (the engine's `WindowIdx`).
        idx: WindowIdx,
        /// When to cut the window short.
        at: Time,
    },
    /// Damage checkpoint file `seq` immediately after it is written.
    CorruptSnapshot {
        /// Sequence number of the snapshot to damage.
        seq: u64,
        /// How to damage it.
        mode: CorruptMode,
    },
}

/// A set of faults to inject into one run. Crash faults are one-shot:
/// once tripped (or once resumed past), they do not fire again, which is
/// what lets a resume loop make progress past the fault it crashed on.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Crash faults already tripped (or skipped on resume).
    spent_crashes: Vec<Time>,
}

impl FaultPlan {
    /// A plan with exactly the given faults.
    pub fn scheduled(faults: Vec<Fault>) -> Self {
        Self {
            faults,
            spent_crashes: Vec::new(),
        }
    }

    /// A reproducible random plan: `crashes` crash instants drawn
    /// uniformly from the middle 80% of `[0, horizon]` on the
    /// `fault-plan` substream of `seed`.
    pub fn seeded(seed: u64, horizon: Time, crashes: usize) -> Self {
        let mut rng = stream(seed, "fault-plan");
        let mut faults: Vec<Fault> = (0..crashes)
            .map(|_| {
                let f = 0.1 + 0.8 * rng.gen::<f64>();
                Fault::Crash {
                    at: Time((horizon.0 as f64 * f) as u64),
                }
            })
            .collect();
        faults.sort_by_key(|f| match f {
            Fault::Crash { at } => at.0,
            _ => unreachable!("seeded plans only draw crashes"),
        });
        Self {
            faults,
            spent_crashes: Vec::new(),
        }
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Marks every crash at or before `now` as already spent — called on
    /// resume so the fault that killed the previous attempt does not kill
    /// this one at the same instant forever.
    pub fn ack_crashes_before(&mut self, now: Time) {
        for f in &self.faults {
            if let Fault::Crash { at } = f {
                if *at <= now && !self.spent_crashes.contains(at) {
                    self.spent_crashes.push(*at);
                }
            }
        }
    }

    /// Panics with a distinctive message if an unspent crash fault is due
    /// at `now`. The event loops call this once per event.
    pub fn trip_crash(&mut self, now: Time) {
        let due = self.faults.iter().find_map(|f| match f {
            Fault::Crash { at } if *at <= now && !self.spent_crashes.contains(at) => Some(*at),
            _ => None,
        });
        if let Some(at) = due {
            self.spent_crashes.push(at);
            crate::diag::warn(
                "fault-crash",
                "injected crash fault tripping",
                &[("at_us", at.0.to_string()), ("now_us", now.0.to_string())],
            );
            panic!(
                "injected crash fault at {at} (sim time {now}) [diag=fault-crash at_us={}]",
                at.0
            );
        }
    }

    /// The abort instant for window `idx`, if one is planned inside
    /// `(start, end)`. The event loops substitute this for the window's
    /// natural close when scheduling its `ContactEnd`.
    pub fn abort_for(&self, idx: WindowIdx, start: Time, end: Time) -> Option<Time> {
        self.faults.iter().find_map(|f| match f {
            Fault::AbortWindow { idx: i, at } if *i == idx && *at > start && *at < end => Some(*at),
            _ => None,
        })
    }

    /// How checkpoint `seq` should be damaged, if a corruption fault
    /// targets it.
    pub fn corruption_for(&self, seq: u64) -> Option<CorruptMode> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptSnapshot { seq: s, mode } if *s == seq => Some(*mode),
            _ => None,
        })
    }
}

/// Damages `path` in place according to `mode` — the write half of
/// [`Fault::CorruptSnapshot`], also handy for tests that corrupt plan
/// files.
pub fn corrupt_file(path: &Path, mode: CorruptMode) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    let damaged = corrupt_bytes(bytes, mode);
    std::fs::write(path, damaged)
}

/// The pure core of [`corrupt_file`].
pub fn corrupt_bytes(mut bytes: Vec<u8>, mode: CorruptMode) -> Vec<u8> {
    match mode {
        CorruptMode::Truncate => {
            bytes.truncate(bytes.len() / 2);
        }
        CorruptMode::BitFlip => {
            if !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_sorted() {
        let horizon = Time::from_secs(1000);
        let a = FaultPlan::seeded(7, horizon, 4);
        let b = FaultPlan::seeded(7, horizon, 4);
        assert_eq!(a.faults(), b.faults());
        let times: Vec<u64> = a
            .faults()
            .iter()
            .map(|f| match f {
                Fault::Crash { at } => at.0,
                _ => panic!("seeded plans only contain crashes"),
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times
            .iter()
            .all(|&t| t >= horizon.0 / 10 && t <= horizon.0 * 9 / 10));
        let c = FaultPlan::seeded(8, horizon, 4);
        assert_ne!(a.faults(), c.faults(), "different seeds differ");
    }

    #[test]
    #[should_panic(expected = "injected crash fault")]
    fn crash_trips_when_due() {
        let mut plan = FaultPlan::scheduled(vec![Fault::Crash {
            at: Time::from_secs(10),
        }]);
        plan.trip_crash(Time::from_secs(9)); // not yet
        plan.trip_crash(Time::from_secs(10));
    }

    #[test]
    fn acked_crashes_do_not_retrip() {
        let mut plan = FaultPlan::scheduled(vec![Fault::Crash {
            at: Time::from_secs(10),
        }]);
        plan.ack_crashes_before(Time::from_secs(10));
        plan.trip_crash(Time::from_secs(11)); // must not panic
    }

    #[test]
    fn abort_only_inside_the_window_span() {
        let plan = FaultPlan::scheduled(vec![Fault::AbortWindow {
            idx: 3,
            at: Time::from_secs(50),
        }]);
        let (s, e) = (Time::from_secs(40), Time::from_secs(60));
        assert_eq!(plan.abort_for(3, s, e), Some(Time::from_secs(50)));
        assert_eq!(plan.abort_for(2, s, e), None, "other windows untouched");
        assert_eq!(
            plan.abort_for(3, Time::from_secs(55), e),
            None,
            "abort before the start is ignored"
        );
    }

    #[test]
    fn corrupt_bytes_modes() {
        let original: Vec<u8> = (0..100u8).collect();
        let truncated = corrupt_bytes(original.clone(), CorruptMode::Truncate);
        assert_eq!(truncated.len(), 50);
        let flipped = corrupt_bytes(original.clone(), CorruptMode::BitFlip);
        assert_eq!(flipped.len(), 100);
        assert_ne!(flipped, original);
        assert_eq!(
            flipped
                .iter()
                .zip(&original)
                .filter(|(a, b)| a != b)
                .count(),
            1
        );
    }
}
