//! Compiled contact plans: generator atoms expanded lazily through the
//! [`ContactSource`](crate::source::ContactSource) seam.
//!
//! A materialized [`Schedule`] costs one [`ContactWindow`] (48 bytes) per
//! meeting, which caps scenario size at what fits in RAM. A
//! [`CompiledPlan`] stores [`PlanAtom`]s instead — literal windows,
//! periodic generators, or delta-encoded runs — and [`PlanStream`]
//! heap-merges the atom cursors back into start order on demand, so the
//! resident cost is the *plan*, not its expansion: a periodic atom covers
//! any number of meetings in a constant-size struct, and a delta run costs
//! one `TimeDelta` per extra meeting instead of a whole window.
//!
//! # Expansion order
//!
//! The contract is exact equivalence with the materialized path:
//! [`PlanStream`] yields the same window sequence as
//! `Schedule::new(plan.materialize_windows()).windows()` — i.e. the stable
//! sort by `start` of the concatenated atom expansions, atoms in
//! first-start order. The stream achieves this by merging on
//! `(start, atom index, repeat)`: within an atom the repeats are
//! nondecreasing in start and emitted in order, and across atoms equal
//! starts break by atom index, which is exactly what a stable sort does to
//! the concatenation. Atoms activate lazily (sorted by first start), so a
//! plan with millions of atoms keeps only the *started* ones in the merge
//! heap.
//!
//! [`CompiledPlan::compress`] is the inverse: it folds an already-ordered
//! window stream into atoms such that the round trip is exact — same
//! order, same capacities, same durations — using the same tie-safe
//! run-length rules as [`dtn_trace::compress_contacts`].

use crate::contact::{ContactWindow, Schedule};
use crate::time::{Time, TimeDelta};
use crate::types::NodeId;
use dtn_trace::{ContactRecord, RecordAtom, RecordPlan};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One atom of a compiled contact plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanAtom {
    /// A single literal window.
    Literal(ContactWindow),
    /// `repeats` copies of `template`, the k-th shifted `k * period` later
    /// (the template's own `start` is the phase). `repeats >= 2`.
    Periodic {
        /// The first window of the train; endpoints, rate, lump and
        /// duration are shared by every repeat.
        template: ContactWindow,
        /// Start-to-start gap between consecutive repeats.
        period: TimeDelta,
        /// Total number of windows, including the template's.
        repeats: u32,
    },
    /// `deltas.len() + 1` windows: the template, then one more per delta,
    /// each starting `deltas[k]` after its predecessor.
    DeltaRun {
        /// The first window of the run.
        template: ContactWindow,
        /// Consecutive start-to-start gaps.
        deltas: Vec<TimeDelta>,
    },
}

impl PlanAtom {
    /// The first window (every repeat shares its shape).
    pub fn template(&self) -> &ContactWindow {
        match self {
            PlanAtom::Literal(t)
            | PlanAtom::Periodic { template: t, .. }
            | PlanAtom::DeltaRun { template: t, .. } => t,
        }
    }

    /// Start of the atom's first window.
    pub fn first_start(&self) -> Time {
        self.template().start
    }

    /// Number of windows this atom expands to.
    pub fn window_count(&self) -> u64 {
        match self {
            PlanAtom::Literal(_) => 1,
            PlanAtom::Periodic { repeats, .. } => u64::from(*repeats),
            PlanAtom::DeltaRun { deltas, .. } => deltas.len() as u64 + 1,
        }
    }

    /// Start of the last repeat; `None` if the train overflows the time
    /// axis (such an atom is rejected by [`CompiledPlan::new`]).
    fn last_start(&self) -> Option<u64> {
        match self {
            PlanAtom::Literal(t) => Some(t.start.0),
            PlanAtom::Periodic {
                template,
                period,
                repeats,
            } => period
                .0
                .checked_mul(u64::from(repeats.checked_sub(1)?))
                .and_then(|span| template.start.0.checked_add(span)),
            PlanAtom::DeltaRun { template, deltas } => deltas
                .iter()
                .try_fold(template.start.0, |t, d| t.checked_add(d.0)),
        }
    }

    /// Heap-allocated bytes owned by this atom (delta storage).
    fn heap_bytes(&self) -> usize {
        match self {
            PlanAtom::DeltaRun { deltas, .. } => deltas.capacity() * size_of::<TimeDelta>(),
            _ => 0,
        }
    }
}

/// A validated, expansion-ready compressed contact plan.
///
/// Atoms are held in first-start order; [`CompiledPlan::stream`] expands
/// them lazily and [`CompiledPlan::materialize`] eagerly (both in the same
/// order — see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledPlan {
    atoms: Vec<PlanAtom>,
    window_count: u64,
}

impl CompiledPlan {
    /// Builds a plan from atoms, stable-sorting them by first start (the
    /// canonical tie-break order of expansion).
    ///
    /// # Panics
    /// If an atom's repeat train overflows the time axis, or a
    /// `Periodic`/`DeltaRun` atom has fewer than two windows.
    pub fn new(mut atoms: Vec<PlanAtom>) -> Self {
        for atom in &atoms {
            assert!(atom.last_start().is_some(), "atom overflows the time axis");
            match atom {
                PlanAtom::Periodic { repeats, .. } => {
                    assert!(*repeats >= 2, "periodic atoms repeat at least twice")
                }
                PlanAtom::DeltaRun { deltas, .. } => {
                    assert!(!deltas.is_empty(), "delta runs carry at least one delta")
                }
                PlanAtom::Literal(_) => {}
            }
        }
        atoms.sort_by_key(PlanAtom::first_start);
        let window_count = atoms.iter().map(PlanAtom::window_count).sum();
        Self {
            atoms,
            window_count,
        }
    }

    /// Folds a window sequence in nondecreasing `start` order (what any
    /// [`ContactSource`](crate::source::ContactSource) yields) into a plan
    /// whose expansion replays the sequence exactly.
    ///
    /// Consecutive windows sharing endpoints, rate, lump and duration fold
    /// into one run: regular gaps become [`PlanAtom::Periodic`], irregular
    /// ones [`PlanAtom::DeltaRun`]. Within a group of equal-start windows,
    /// a run is only extended when doing so preserves the input order on
    /// expansion; otherwise the run is closed and a fresh atom opened —
    /// the same tie rule as [`dtn_trace::compress_contacts`]. Encoding
    /// memory is O(distinct open runs) plus the output plan.
    ///
    /// # Panics
    /// If starts decrease.
    pub fn compress<I: IntoIterator<Item = ContactWindow>>(windows: I) -> Self {
        type Key = (u64, u32, u32, u64, u64);
        struct Run {
            template: ContactWindow,
            last_start: Time,
            deltas: Vec<TimeDelta>,
        }
        let mut runs: Vec<Run> = Vec::new();
        let mut open: HashMap<Key, usize> = HashMap::new();
        let mut last = Time::ZERO;
        // Largest run index extended within the current equal-start group.
        let mut tie_max: Option<usize> = None;

        for w in windows {
            assert!(last <= w.start, "windows must be start-ordered");
            if last != w.start {
                tie_max = None;
            }
            last = w.start;

            let key: Key = (w.duration().0, w.a.0, w.b.0, w.bytes_per_sec, w.lump_bytes);
            let extendable = open
                .get(&key)
                .copied()
                .filter(|&ri| tie_max.is_none_or(|m| m <= ri));
            match extendable {
                Some(ri) => {
                    let run = &mut runs[ri];
                    run.deltas.push(w.start.since(run.last_start));
                    run.last_start = w.start;
                    tie_max = Some(ri);
                }
                None => {
                    let ri = runs.len();
                    runs.push(Run {
                        template: w,
                        last_start: w.start,
                        deltas: Vec::new(),
                    });
                    open.insert(key, ri);
                    tie_max = Some(ri);
                }
            }
        }

        Self::new(
            runs.into_iter()
                .map(|run| {
                    if run.deltas.is_empty() {
                        return PlanAtom::Literal(run.template);
                    }
                    let first = run.deltas[0];
                    if run.deltas.iter().all(|&d| d == first) {
                        return PlanAtom::Periodic {
                            template: run.template,
                            period: first,
                            repeats: run.deltas.len() as u32 + 1,
                        };
                    }
                    PlanAtom::DeltaRun {
                        template: run.template,
                        deltas: run.deltas,
                    }
                })
                .collect(),
        )
    }

    /// Compresses an existing schedule (already start-sorted).
    pub fn compress_schedule(schedule: &Schedule) -> Self {
        Self::compress(schedule.windows().iter().copied())
    }

    /// The atoms, in first-start order.
    pub fn atoms(&self) -> &[PlanAtom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Total windows the plan expands to.
    pub fn window_count(&self) -> u64 {
        self.window_count
    }

    /// Whether the plan expands to nothing.
    pub fn is_empty(&self) -> bool {
        self.window_count == 0
    }

    /// Resident size of the plan representation in bytes (atom structs
    /// plus delta storage) — what the compression metrics compare against
    /// `window_count() * size_of::<ContactWindow>()` for the materialized
    /// equivalent.
    pub fn in_memory_bytes(&self) -> usize {
        self.atoms.capacity() * size_of::<PlanAtom>()
            + self.atoms.iter().map(PlanAtom::heap_bytes).sum::<usize>()
    }

    /// Resident size of the materialized equivalent, bytes.
    pub fn materialized_bytes(&self) -> u64 {
        self.window_count * size_of::<ContactWindow>() as u64
    }

    /// Lazily expands the plan in start order (ties by atom order); the
    /// stream is a [`ContactSource`](crate::source::ContactSource) via the
    /// iterator blanket impl.
    pub fn stream(self: &Arc<Self>) -> PlanStream {
        PlanStream::new(Arc::clone(self))
    }

    /// Eagerly expands the plan into a [`Schedule`] — byte-identical to
    /// collecting [`CompiledPlan::stream`].
    pub fn materialize(&self) -> Schedule {
        let arc = Arc::new(self.clone());
        Schedule::new(arc.stream().collect::<Vec<_>>())
    }

    /// Converts to the trace-layer plan for binary serialization
    /// ([`RecordPlan::to_bytes`]), mapping templates through the exact
    /// [`ContactWindow`] ↔ [`ContactRecord`] correspondence (day 0).
    pub fn to_record_plan(&self) -> RecordPlan {
        RecordPlan::new(
            self.atoms
                .iter()
                .map(|atom| match atom {
                    PlanAtom::Literal(t) => RecordAtom::Literal(ContactRecord::from(*t)),
                    PlanAtom::Periodic {
                        template,
                        period,
                        repeats,
                    } => RecordAtom::Periodic {
                        template: ContactRecord::from(*template),
                        period_us: period.0,
                        repeats: *repeats,
                    },
                    PlanAtom::DeltaRun { template, deltas } => RecordAtom::DeltaRun {
                        template: ContactRecord::from(*template),
                        deltas_us: deltas.iter().map(|d| d.0).collect(),
                    },
                })
                .collect(),
        )
    }

    /// Rebuilds a plan from its trace-layer form (day indices are folded
    /// into day-0 window starts, matching
    /// [`Schedule::from_records`] semantics).
    pub fn from_record_plan(plan: &RecordPlan) -> Self {
        Self::new(
            plan.atoms()
                .iter()
                .map(|atom| match atom {
                    RecordAtom::Literal(t) => PlanAtom::Literal(ContactWindow::from(*t)),
                    RecordAtom::Periodic {
                        template,
                        period_us,
                        repeats,
                    } => PlanAtom::Periodic {
                        template: ContactWindow::from(*template),
                        period: TimeDelta(*period_us),
                        repeats: *repeats,
                    },
                    RecordAtom::DeltaRun {
                        template,
                        deltas_us,
                    } => PlanAtom::DeltaRun {
                        template: ContactWindow::from(*template),
                        deltas: deltas_us.iter().map(|&d| TimeDelta(d)).collect(),
                    },
                })
                .collect(),
        )
    }

    /// Size of the compact binary encoding, bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_record_plan().encoded_len()
    }

    /// Start of the earliest window whose endpoints span two shards of
    /// `partition`, or `None` when every window is shard-local.
    ///
    /// This is the sharded runtime's static sync horizon: every repeat
    /// of an atom shares the template's endpoints, so scanning atoms (in
    /// first-start order) yields the exact first cross-shard start
    /// without expanding a single window — a conservative lower bound on
    /// when the first inter-shard barrier can possibly occur. Shards can
    /// free-run from time zero up to this instant.
    pub fn first_cross_shard_start(&self, partition: &crate::shard::Partition) -> Option<Time> {
        self.atoms
            .iter()
            .find(|a| !partition.is_local(a.template()))
            .map(|a| a.first_start())
    }

    /// Largest node index mentioned, plus one (0 when empty) — the
    /// compressed twin of [`Schedule::node_count_hint`].
    pub fn node_count_hint(&self) -> usize {
        self.atoms
            .iter()
            .map(|a| {
                let t = a.template();
                t.a.0.max(t.b.0) as usize + 1
            })
            .max()
            .unwrap_or(0)
    }
}

/// Lazy expansion cursor over a shared [`CompiledPlan`].
///
/// Many concurrent runs can stream the same plan through their own
/// cursors, exactly like
/// [`ScheduleStream`](crate::source::ScheduleStream) over a shared
/// schedule — but the shared state is the compressed plan, not the
/// expansion. The merge heap holds one entry per *started* atom;
/// not-yet-started atoms cost nothing until their first window is due.
#[derive(Debug, Clone)]
pub struct PlanStream {
    plan: Arc<CompiledPlan>,
    /// Pending repeats: `(start µs, atom index, repeat index)` — popping
    /// the minimum reproduces the stable-sort-by-start order.
    heap: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// First atom (in first-start order) not yet activated.
    next_atom: usize,
    emitted: u64,
}

impl PlanStream {
    /// Streams `plan` from its first window.
    pub fn new(plan: Arc<CompiledPlan>) -> Self {
        Self {
            plan,
            heap: BinaryHeap::new(),
            next_atom: 0,
            emitted: 0,
        }
    }
}

impl Iterator for PlanStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        let atoms = &self.plan.atoms;
        // Activate every atom whose first window is due at or before the
        // current merge front (atoms are sorted by first start, so the
        // scan never revisits).
        while self.next_atom < atoms.len() {
            let first = atoms[self.next_atom].first_start().0;
            match self.heap.peek() {
                Some(&Reverse((due, _, _))) if first > due => break,
                _ => {
                    self.heap.push(Reverse((first, self.next_atom as u32, 0)));
                    self.next_atom += 1;
                }
            }
        }

        let Reverse((start, idx, repeat)) = self.heap.pop()?;
        let atom = &atoms[idx as usize];
        let template = atom.template();
        let next = match atom {
            PlanAtom::Literal(_) => None,
            PlanAtom::Periodic {
                period, repeats, ..
            } => (repeat + 1 < *repeats).then(|| start + period.0),
            PlanAtom::DeltaRun { deltas, .. } => deltas.get(repeat as usize).map(|d| start + d.0),
        };
        if let Some(next_start) = next {
            self.heap.push(Reverse((next_start, idx, repeat + 1)));
        }
        self.emitted += 1;
        Some(template.shifted(TimeDelta(start - template.start.0)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.plan.window_count - self.emitted) as usize;
        (left, Some(left))
    }
}

/// A `NodeId`-typed convenience for building periodic atoms.
pub fn periodic_instant(
    first: Time,
    a: NodeId,
    b: NodeId,
    bytes: u64,
    period: TimeDelta,
    repeats: u32,
) -> PlanAtom {
    PlanAtom::Periodic {
        template: ContactWindow::instant(first, a, b, bytes),
        period,
        repeats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(start_us: u64, a: u32, b: u32, bytes: u64) -> ContactWindow {
        ContactWindow::instant(Time(start_us), NodeId(a), NodeId(b), bytes)
    }

    #[test]
    fn compress_round_trips_exactly() {
        let mut windows = Vec::new();
        for k in 0..50u64 {
            windows.push(inst(10 + 40 * k, 0, 1, 512)); // periodic run
        }
        windows.push(inst(17, 2, 3, 64)); // literal
        windows.extend([inst(100, 4, 5, 9), inst(103, 4, 5, 9), inst(110, 4, 5, 9)]); // delta run
        windows.push(ContactWindow::new(
            Time(500),
            Time(2_000_500),
            NodeId(6),
            NodeId(7),
            1000,
        ));
        let sorted = Schedule::new(windows).windows().to_vec();

        let plan = Arc::new(CompiledPlan::compress(sorted.iter().copied()));
        assert!(plan.atom_count() < sorted.len() / 2);
        assert_eq!(plan.window_count(), sorted.len() as u64);
        let streamed: Vec<_> = plan.stream().collect();
        assert_eq!(streamed, sorted);
        assert_eq!(plan.materialize().windows(), &sorted[..]);
    }

    #[test]
    fn stream_matches_stable_sort_with_ties() {
        // Three atoms colliding at t=100: expansion must break ties by
        // atom (first-start) order, like Schedule::new's stable sort.
        let plan = Arc::new(CompiledPlan::new(vec![
            PlanAtom::Periodic {
                template: inst(0, 0, 1, 1),
                period: TimeDelta(50),
                repeats: 3,
            },
            PlanAtom::Literal(inst(100, 2, 3, 2)),
            PlanAtom::DeltaRun {
                template: inst(40, 4, 5, 3),
                deltas: vec![TimeDelta(60), TimeDelta(5)],
            },
        ]));
        let streamed: Vec<_> = plan.stream().collect();
        let concat: Vec<ContactWindow> = vec![
            inst(0, 0, 1, 1),
            inst(50, 0, 1, 1),
            inst(100, 0, 1, 1),
            inst(40, 4, 5, 3),
            inst(100, 4, 5, 3),
            inst(105, 4, 5, 3),
            inst(100, 2, 3, 2),
        ];
        assert_eq!(streamed, Schedule::new(concat).windows());
        assert_eq!(streamed.len(), plan.window_count() as usize);
    }

    #[test]
    fn lazy_activation_defers_future_atoms() {
        let atoms: Vec<PlanAtom> = (0..100)
            .map(|k| PlanAtom::Literal(inst(1000 * k, 0, 1, 1)))
            .collect();
        let plan = Arc::new(CompiledPlan::new(atoms));
        let mut stream = plan.stream();
        assert_eq!(stream.size_hint(), (100, Some(100)));
        stream.next();
        // Only the merge front is in the heap, not all 100 atoms.
        assert!(stream.heap.len() <= 1, "heap holds {}", stream.heap.len());
        assert!(stream.next_atom <= 2);
        assert_eq!(stream.count(), 99);
    }

    #[test]
    fn record_plan_round_trip_and_binary() {
        let windows = vec![
            inst(5, 1, 2, 77),
            inst(55, 1, 2, 77),
            inst(105, 1, 2, 77),
            ContactWindow::new(Time(9), Time(4_000_009), NodeId(3), NodeId(4), 512),
        ];
        let plan = CompiledPlan::compress(Schedule::new(windows).windows().iter().copied());
        let rp = plan.to_record_plan();
        let back = CompiledPlan::from_record_plan(&rp);
        assert_eq!(back, plan);
        let decoded = dtn_trace::RecordPlan::from_bytes(&rp.to_bytes()).unwrap();
        assert_eq!(CompiledPlan::from_record_plan(&decoded), plan);
        assert_eq!(plan.encoded_len(), rp.to_bytes().len());
    }

    #[test]
    fn compression_metrics_show_the_win() {
        let windows: Vec<_> = (0..10_000u64)
            .map(|k| inst(7 + 100 * k, 0, 1, 2048))
            .collect();
        let plan = CompiledPlan::compress(windows.iter().copied());
        assert_eq!(plan.atom_count(), 1);
        assert!(plan.materialized_bytes() as usize > 100 * plan.in_memory_bytes());
        assert!(plan.materialized_bytes() as usize > 100 * plan.encoded_len());
        assert_eq!(plan.node_count_hint(), 2);
    }

    #[test]
    #[should_panic(expected = "start-ordered")]
    fn unsorted_compress_input_panics() {
        CompiledPlan::compress(vec![inst(9, 0, 1, 1), inst(3, 0, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_atom_rejected() {
        CompiledPlan::new(vec![PlanAtom::Periodic {
            template: inst(u64::MAX - 5, 0, 1, 1),
            period: TimeDelta(10),
            repeats: 2,
        }]);
    }

    #[test]
    fn first_cross_shard_start_is_the_static_horizon() {
        use crate::shard::Partition;
        // Nodes 0..4 in shard 0, 4..8 in shard 1.
        let p = Partition::even(8, 2);
        let plan = CompiledPlan::new(vec![
            PlanAtom::Periodic {
                template: inst(10, 0, 1, 1), // shard-local forever
                period: TimeDelta(50),
                repeats: 100,
            },
            PlanAtom::Literal(inst(70, 5, 6, 1)), // shard-local
            PlanAtom::Periodic {
                template: inst(300, 3, 4, 1), // gateway: crosses the cut
                period: TimeDelta(50),
                repeats: 10,
            },
        ]);
        assert_eq!(plan.first_cross_shard_start(&p), Some(Time(300)));
        // One big shard: nothing ever crosses.
        assert_eq!(plan.first_cross_shard_start(&Partition::even(8, 1)), None);
    }

    #[test]
    fn empty_plan_streams_nothing() {
        let plan = Arc::new(CompiledPlan::compress(Vec::new()));
        assert!(plan.is_empty());
        assert_eq!(plan.stream().count(), 0);
        assert_eq!(plan.materialize().len(), 0);
    }
}
