//! Property tests for the simulator's data structures, against simple
//! reference models, plus whole-engine invariants.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{
    AckTable, Contact, ContactDriver, NodeBuffer, NodeId, Packet, PacketId, PacketSet, PacketStore,
    Routing, Schedule, SimConfig, Simulation, Time, TimeDelta,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum BufOp {
    /// `(id, dst, size, created_secs)`
    Insert(u32, u32, u64, u64),
    Remove(u32),
}

fn buf_ops() -> impl Strategy<Value = Vec<BufOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..50, 0u32..5, 1u64..2_000, 0u64..500)
                .prop_map(|(id, dst, s, t)| BufOp::Insert(id, dst, s, t)),
            (0u32..50).prop_map(BufOp::Remove),
        ],
        1..100,
    )
}

proptest! {
    #[test]
    fn buffer_accounting_matches_model(ops in buf_ops(), cap in 1_000u64..50_000) {
        let mut buf = NodeBuffer::new(cap);
        // Model: id → (dst, size, created).
        let mut model: std::collections::BTreeMap<u32, (u32, u64, u64)> = Default::default();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                BufOp::Insert(id, dst, size, created) => {
                    let packet = Packet {
                        id: PacketId(id),
                        src: NodeId(0),
                        dst: NodeId(dst),
                        size_bytes: size,
                        created_at: Time::from_secs(created),
                    };
                    let fits = !model.contains_key(&id)
                        && model.values().map(|v| v.1).sum::<u64>() + size <= cap;
                    let ok = buf.insert(&packet, Time::from_secs(step as u64));
                    prop_assert_eq!(ok, fits, "insert outcome mismatch");
                    if ok {
                        model.insert(id, (dst, size, created));
                    }
                }
                BufOp::Remove(id) => {
                    let ok = buf.remove(PacketId(id));
                    prop_assert_eq!(ok, model.remove(&id).is_some());
                }
            }
            prop_assert_eq!(buf.used_bytes(), model.values().map(|v| v.1).sum::<u64>());
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.free_bytes(), cap - buf.used_bytes());
            let ids: Vec<u32> = buf.ids().iter().map(|p| p.0).collect();
            let expect: Vec<u32> = model.keys().copied().collect();
            prop_assert_eq!(ids, expect, "id-ordered iteration");
            // Per-destination delivery queues: `bytes_ahead` must equal the
            // total size of same-destination packets strictly earlier in
            // `(created_at, id)` order, and the hypothetical-insert variant
            // must count strictly older packets only.
            for (&id, &(dst, _, created)) in &model {
                let ahead = buf.bytes_ahead(NodeId(dst), PacketId(id), Time::from_secs(created));
                let expect: u64 = model
                    .iter()
                    .filter(|(&oid, &(odst, _, ocreated))| {
                        odst == dst && (ocreated, oid) < (created, id)
                    })
                    .map(|(_, &(_, osize, _))| osize)
                    .sum();
                prop_assert_eq!(ahead, expect, "bytes_ahead mismatch for p{}", id);
            }
            for probe_dst in 0u32..5 {
                for probe_t in [0u64, 250, 499] {
                    let got = buf.bytes_ahead_if_inserted(NodeId(probe_dst), Time::from_secs(probe_t));
                    let expect: u64 = model
                        .values()
                        .filter(|&&(odst, _, ocreated)| odst == probe_dst && ocreated < probe_t)
                        .map(|&(_, osize, _)| osize)
                        .sum();
                    prop_assert_eq!(got, expect);
                    let total = buf.total_bytes(NodeId(probe_dst));
                    let expect_total: u64 = model
                        .values()
                        .filter(|&&(odst, _, _)| odst == probe_dst)
                        .map(|&(_, osize, _)| osize)
                        .sum();
                    prop_assert_eq!(total, expect_total);
                }
            }
        }
    }

    #[test]
    fn packet_set_matches_btreeset(inserts in prop::collection::vec(0u32..500, 1..200)) {
        let mut set = PacketSet::new();
        let mut model = BTreeSet::new();
        for id in &inserts {
            prop_assert_eq!(set.insert(PacketId(*id)), model.insert(*id));
        }
        prop_assert_eq!(set.len(), model.len());
        let got: Vec<u32> = set.iter().map(|p| p.0).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, expect);
        for probe in 0u32..500 {
            prop_assert_eq!(set.contains(PacketId(probe)), model.contains(&probe));
        }
    }

    #[test]
    fn ack_exchange_reaches_fixed_point(
        learns in prop::collection::vec((0u32..4, 0u32..100), 1..60),
    ) {
        let mut t = AckTable::new(4);
        for &(node, pkt) in &learns {
            t.learn(NodeId(node), PacketId(pkt));
        }
        // A full gossip round among all pairs...
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                let _ = t.exchange(NodeId(a), NodeId(b));
            }
        }
        // ...then every further exchange moves nothing (fixed point), and
        // every node knows every learned packet.
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                prop_assert_eq!(t.exchange(NodeId(a), NodeId(b)), (0, 0));
            }
        }
        for &(_, pkt) in &learns {
            for node in 0..4u32 {
                prop_assert!(t.knows(NodeId(node), PacketId(pkt)));
            }
        }
    }
}

// --- Sorted-holders invariant --------------------------------------------
//
// `engine.rs` and `driver.rs` maintain the per-packet holder lists with
// `binary_search`, which is only correct while every list stays sorted and
// duplicate-free — through packet creation, replication, delivery,
// protocol-driven eviction, creation-time `make_room` eviction and TTL
// expiry. The auditor protocol below exercises all of those paths with
// proptest-chosen decisions and cross-checks the holder lists against the
// buffers at every contact.

/// A protocol that floods/evicts according to a decision tape while
/// auditing the holder lists via the global view.
struct HolderAuditor {
    nodes: usize,
    decisions: Vec<u8>,
    step: usize,
    violation: Option<String>,
}

impl HolderAuditor {
    fn new(decisions: Vec<u8>) -> Self {
        Self {
            nodes: 0,
            decisions,
            step: 0,
            violation: None,
        }
    }

    fn next_decision(&mut self) -> u8 {
        let d = self.decisions[self.step % self.decisions.len()];
        self.step += 1;
        d
    }

    fn audit(&mut self, driver: &ContactDriver<'_>) {
        let g = driver.global();
        for idx in 0..driver.packets().len() {
            let id = PacketId(idx as u32);
            let holders: Vec<NodeId> = g.holders(id).collect();
            if !holders.windows(2).all(|w| w[0] < w[1]) {
                self.violation = Some(format!("{id}: holders not sorted+unique: {holders:?}"));
                return;
            }
            for node in 0..self.nodes {
                let node = NodeId(node as u32);
                let listed = holders.binary_search(&node).is_ok();
                let stored = g.buffer(node).contains(id);
                if listed != stored {
                    self.violation = Some(format!(
                        "{id} at {node}: holder list says {listed}, buffer says {stored}"
                    ));
                    return;
                }
            }
        }
    }
}

impl Routing for HolderAuditor {
    fn name(&self) -> String {
        "holder-auditor".into()
    }

    fn on_init(&mut self, config: &SimConfig) {
        self.nodes = config.nodes;
    }

    fn make_room(
        &mut self,
        _node: NodeId,
        _incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        _packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        // Evict in id order until enough space frees (sometimes refuse, by
        // tape, to exercise the creation-drop path too).
        if self.next_decision().is_multiple_of(4) {
            return Vec::new();
        }
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for (id, meta) in buffer.iter() {
            if freed >= needed {
                break;
            }
            victims.push(id);
            freed += meta.size_bytes;
        }
        victims
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        self.audit(driver);
        if self.violation.is_some() {
            return;
        }
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            for id in driver.buffer(from).ids() {
                match self.next_decision() % 4 {
                    // Mostly transfer (replication/delivery/dup paths)...
                    0 | 1 => {
                        let _ = driver.try_transfer(from, id);
                    }
                    // ...sometimes evict (including double-evict no-ops)...
                    2 => {
                        driver.evict(from, id);
                        driver.evict(from, id);
                    }
                    // ...sometimes leave the replica alone.
                    _ => {}
                }
            }
        }
        self.audit(driver);
    }
}

/// `(time, endpoint, endpoint, bytes)` quadruples, pre-modulo.
type RawEvents = Vec<(u16, u8, u8, u16)>;
/// `(nodes, contacts, specs, capacity, decision tape, with_ttl)`.
type Scenario = (usize, RawEvents, RawEvents, u64, Vec<u8>, bool);

fn engine_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..6,
        prop::collection::vec((0u16..500, 0u8..6, 0u8..6, 0u16..4096), 1..40),
        prop::collection::vec((0u16..500, 0u8..6, 0u8..6, 1u16..1500), 1..30),
        1_500u64..8_000,
        prop::collection::vec(any::<u8>(), 4..64),
        any::<bool>(),
    )
}

proptest! {
    #[test]
    fn holder_lists_stay_sorted_and_consistent(
        (nodes, contacts, specs, capacity, decisions, with_ttl) in engine_scenario(),
    ) {
        let n = nodes as u8;
        let contacts: Vec<Contact> = contacts
            .into_iter()
            .map(|(t, a, b, bytes)| {
                let a = a % n;
                let b = if b % n == a { (a + 1) % n } else { b % n };
                Contact::new(
                    Time::from_secs(u64::from(t)),
                    NodeId(u32::from(a)),
                    NodeId(u32::from(b)),
                    u64::from(bytes),
                )
            })
            .collect();
        let specs: Vec<PacketSpec> = specs
            .into_iter()
            .map(|(t, src, dst, size)| {
                let src = src % n;
                let dst = if dst % n == src { (src + 1) % n } else { dst % n };
                PacketSpec {
                    time: Time::from_secs(u64::from(t)),
                    src: NodeId(u32::from(src)),
                    dst: NodeId(u32::from(dst)),
                    size_bytes: u64::from(size),
                }
            })
            .collect();
        let config = SimConfig {
            nodes,
            buffer_capacity: capacity,
            horizon: Time::from_secs(600),
            allow_global_knowledge: true,
            ttl: with_ttl.then_some(TimeDelta::from_secs(120)),
            ..SimConfig::default()
        };
        let sim = Simulation::new(config, Schedule::new(contacts), Workload::new(specs));
        let mut auditor = HolderAuditor::new(decisions);
        let _ = sim.run(&mut auditor);
        prop_assert!(auditor.violation.is_none(), "{}", auditor.violation.unwrap());
    }
}

// --- Intra-run parallel batch scheduler ----------------------------------
//
// The conservative parallel layer (`dtn_sim::par`) rests on two claims:
// the batcher only ever groups pairwise node-disjoint contact drives, and
// two drives that share a node always commit in scan (`seq`) order. The
// proptests below check both directly on the batcher, then close the loop
// end-to-end: a run executed with `intra_jobs > 1` must produce a report
// equal to the serial engine's, event for event.

use dtn_sim::par::{Batcher, PendingDrive};
use dtn_sim::{ContactConcurrency, ContactPool, ContactWindow, SlicePartition, TransferOutcome};

fn pending(seq: u64, a: u32, b: u32) -> PendingDrive {
    PendingDrive {
        window: ContactWindow::instant(Time::from_secs(seq), NodeId(a), NodeId(b), 2048),
        now: Time::from_secs(seq),
        budget: 2048,
        seq,
        measured: true,
    }
}

proptest! {
    #[test]
    fn batches_are_node_disjoint_and_conflicts_commit_in_seq_order(
        pairs in prop::collection::vec((0u32..12, 0u32..12), 1..80),
        lookahead in 1usize..16,
    ) {
        let drives: Vec<PendingDrive> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a != b)
            .map(|(i, &(a, b))| pending(i as u64, a, b))
            .collect();
        if drives.is_empty() {
            continue;
        }

        let mut batcher = Batcher::new(12, dtn_sim::par::Lookahead::Fixed(lookahead));
        let mut passes: Vec<Vec<PendingDrive>> = Vec::new();
        let flush = |batcher: &mut Batcher, passes: &mut Vec<Vec<PendingDrive>>| {
            loop {
                let ready = batcher.take_ready();
                if ready.is_empty() {
                    break;
                }
                passes.push(ready);
            }
        };
        for drive in &drives {
            batcher.push(*drive);
            if batcher.full() {
                flush(&mut batcher, &mut passes);
            }
        }
        flush(&mut batcher, &mut passes);
        prop_assert!(batcher.is_empty());

        // 1. Every pass is pairwise node-disjoint.
        for pass in &passes {
            let mut nodes: Vec<u32> = pass
                .iter()
                .flat_map(|d| [d.window.a.0, d.window.b.0])
                .collect();
            nodes.sort_unstable();
            let len = nodes.len();
            nodes.dedup();
            prop_assert_eq!(len, nodes.len(), "pass shares a node");
        }

        // 2. The commit order is a permutation of the scan order: every
        //    drive exactly once, ascending seq within each pass.
        let committed: Vec<u64> = passes.iter().flatten().map(|d| d.seq).collect();
        let mut sorted = committed.clone();
        sorted.sort_unstable();
        let expect: Vec<u64> = drives.iter().map(|d| d.seq).collect();
        prop_assert_eq!(&sorted, &expect, "every drive commits exactly once");
        for pass in &passes {
            prop_assert!(
                pass.windows(2).all(|w| w[0].seq < w[1].seq),
                "in-pass commit order must be scan order"
            );
        }

        // 3. Two drives sharing a node commit in seq order — the batched
        //    commit order equals the serial (time, rank, seq) order
        //    wherever order can be observed.
        let commit_pos: std::collections::BTreeMap<u64, usize> = committed
            .iter()
            .enumerate()
            .map(|(pos, &seq)| (seq, pos))
            .collect();
        for (i, x) in drives.iter().enumerate() {
            for y in &drives[i + 1..] {
                let shares = x.window.a == y.window.a
                    || x.window.a == y.window.b
                    || x.window.b == y.window.a
                    || x.window.b == y.window.b;
                if shares {
                    prop_assert!(
                        commit_pos[&x.seq] < commit_pos[&y.seq],
                        "conflicting drives {} and {} committed out of order",
                        x.seq,
                        y.seq
                    );
                }
            }
        }
    }
}

/// A flooding protocol that opts into node-disjoint batch execution and
/// spreads batches over the pool — the engine-level equivalence subject.
struct ParFlood;

impl ParFlood {
    fn contact_core(driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            let to = driver.peer_of(from);
            let mut ids = driver.buffer(from).ids();
            ids.sort_by_key(|&id| driver.packets().get(id).dst != to);
            for id in ids {
                if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                    break;
                }
            }
        }
    }
}

impl Routing for ParFlood {
    fn name(&self) -> String {
        "par-flood".into()
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        Self::contact_core(driver);
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        ContactConcurrency::NodeDisjoint
    }

    fn on_contact_batch(&mut self, batch: &mut [ContactDriver<'_>], pool: &ContactPool) {
        let drivers = SlicePartition::new(batch);
        pool.run(drivers.len(), &|_worker, i| {
            // SAFETY: one worker per index; node-disjoint drivers.
            Self::contact_core(unsafe { drivers.get_mut(i) });
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_engine_equals_serial(
        contacts in prop::collection::vec((1u64..200, 0u32..10, 0u32..10, 256u64..4096), 1..120),
        packets in prop::collection::vec((0u64..150, 0u32..10, 0u32..10, 128u64..1024), 1..40),
        ttl in prop::option::of(5u64..100),
        churn in prop::collection::vec((1u64..250, 0u32..10, any::<bool>()), 0..12),
        jobs in 2usize..5,
        lookahead in prop_oneof![
            (1usize..16).prop_map(dtn_sim::par::Lookahead::Fixed),
            (1usize..4, 4usize..64).prop_map(|(min, max)| {
                dtn_sim::par::Lookahead::Adaptive { min, max }
            }),
        ],
    ) {
        let mut windows: Vec<Contact> = contacts
            .iter()
            .filter(|&&(_, a, b, _)| a != b)
            .map(|&(t, a, b, bytes)| Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), bytes))
            .collect();
        windows.sort_by_key(|w| w.time);
        let mut specs: Vec<PacketSpec> = packets
            .iter()
            .filter(|&&(_, s, d, _)| s != d)
            .map(|&(t, src, dst, size)| PacketSpec {
                time: Time::from_secs(t),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: size,
            })
            .collect();
        specs.sort_by_key(|s| s.time);
        if windows.is_empty() || specs.is_empty() {
            continue;
        }

        let mut churn_events: Vec<dtn_sim::NodeEvent> = churn
            .iter()
            .map(|&(t, node, up)| dtn_sim::NodeEvent {
                time: Time::from_secs(t),
                node: NodeId(node),
                up,
            })
            .collect();
        churn_events.sort_by_key(|e| e.time);

        let run = |intra_jobs: usize, lookahead: dtn_sim::par::Lookahead| {
            let cfg = SimConfig {
                nodes: 10,
                buffer_capacity: 4096,
                horizon: Time::from_secs(300),
                ttl: ttl.map(TimeDelta::from_secs),
                intra_jobs,
                lookahead,
                ..SimConfig::default()
            };
            Simulation::new(cfg, Schedule::new(windows.clone()), Workload::new(specs.clone()))
                .with_churn(churn_events.clone())
                .run(&mut ParFlood)
        };
        // The serial baseline uses the default policy; work-stealing
        // replay must be byte-identical at any job count AND any
        // lookahead policy, under churn and TTL expiry.
        let serial = run(1, dtn_sim::par::Lookahead::default());
        let parallel = run(jobs, lookahead);
        prop_assert_eq!(serial, parallel, "intra-run parallel run diverged from serial");
        let serial_same_policy = run(1, lookahead);
        prop_assert_eq!(serial_same_policy, parallel, "lookahead policy changed results");
    }
}

// --- Sharded runtime ------------------------------------------------------
//
// The shard layer (`dtn_sim::shard`) claims byte-identical reports for a
// Stateless protocol under ANY partition of the node space — however
// lopsided, wherever the cut lands relative to the contact structure's
// "gateways" — with churn, TTL expiry, and durative windows in play. The
// proptest draws arbitrary fence posts (which is what arbitrary gateway
// placement reduces to: a boundary either severs a pair or it doesn't)
// and replays the same scenario through the serial engine and the
// sharded runtime.

/// A Stateless flooding protocol: destination-first transfer order, no
/// protocol state at all, so identically-built instances are
/// interchangeable across shards.
struct ShardFlood;

impl Routing for ShardFlood {
    fn name(&self) -> String {
        "shard-flood".into()
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            let to = driver.peer_of(from);
            let mut ids = driver.buffer(from).ids();
            ids.sort_by_key(|&id| driver.packets().get(id).dst != to);
            for id in ids {
                if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                    break;
                }
            }
        }
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        ContactConcurrency::Stateless
    }
}

/// A stateful node-disjoint protocol, the in-band RAPID shape: per-node
/// memory of offered ids biases each node's transfer order, and per-node
/// lifecycle hooks (creation, churn) mutate that memory. Fresh instances
/// are NOT interchangeable, so the sharded runtime must route every hook
/// to the one shared instance's per-node partitions — exactly the
/// single-instance mode `Rapid` rides.
struct MemFlood {
    seen: Vec<dtn_sim::PacketSet>,
}

impl MemFlood {
    fn new() -> Self {
        Self { seen: Vec::new() }
    }
}

impl Routing for MemFlood {
    fn name(&self) -> String {
        "memory-flood".into()
    }

    fn on_init(&mut self, config: &SimConfig) {
        self.seen = (0..config.nodes)
            .map(|_| dtn_sim::PacketSet::new())
            .collect();
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        ContactConcurrency::NodeDisjoint
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            let to = driver.peer_of(from);
            let mut ids = driver.buffer(from).ids();
            ids.sort_by_key(|&id| {
                (
                    driver.packets().get(id).dst != to,
                    self.seen[from.index()].contains(id),
                    id,
                )
            });
            for id in ids {
                if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                    break;
                }
                self.seen[from.index()].insert(id);
            }
        }
    }

    fn on_packet_created(&mut self, packet: &dtn_sim::Packet) {
        self.seen[packet.src.index()].insert(packet.id);
    }

    fn on_node_up(&mut self, node: NodeId, _now: Time) {
        self.seen[node.index()] = dtn_sim::PacketSet::new();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn sharded_engine_equals_serial(
        contacts in prop::collection::vec(
            (1u64..200, 0u32..10, 0u32..10, 256u64..4096, prop::option::of(1u64..40)),
            1..120,
        ),
        packets in prop::collection::vec((0u64..150, 0u32..10, 0u32..10, 128u64..1024), 1..40),
        ttl in prop::option::of(5u64..100),
        churn in prop::collection::vec((1u64..250, 0u32..10, any::<bool>()), 0..12),
        posts in prop::collection::vec(0u32..=10, 0..5),
    ) {
        // Durative windows (Some duration) and instantaneous ones mixed.
        let mut windows: Vec<ContactWindow> = contacts
            .iter()
            .filter(|&&(_, a, b, _, _)| a != b)
            .map(|&(t, a, b, bytes, dur)| match dur {
                None => ContactWindow::instant(
                    Time::from_secs(t), NodeId(a), NodeId(b), bytes,
                ),
                Some(d) => ContactWindow::new(
                    Time::from_secs(t),
                    Time::from_secs(t + d),
                    NodeId(a),
                    NodeId(b),
                    bytes.max(64),
                ),
            })
            .collect();
        windows.sort_by_key(|w| w.start);
        let mut specs: Vec<PacketSpec> = packets
            .iter()
            .filter(|&&(_, s, d, _)| s != d)
            .map(|&(t, src, dst, size)| PacketSpec {
                time: Time::from_secs(t),
                src: NodeId(src),
                dst: NodeId(dst),
                size_bytes: size,
            })
            .collect();
        specs.sort_by_key(|s| s.time);
        if windows.is_empty() || specs.is_empty() {
            continue;
        }
        let mut churn_events: Vec<dtn_sim::NodeEvent> = churn
            .iter()
            .map(|&(t, node, up)| dtn_sim::NodeEvent {
                time: Time::from_secs(t),
                node: NodeId(node),
                up,
            })
            .collect();
        churn_events.sort_by_key(|e| e.time);

        // Arbitrary partition of the 10-node space: proptest-drawn fence
        // posts, so shard ranges may be empty, singleton, or lopsided.
        let mut bounds = posts;
        bounds.push(0);
        bounds.push(10);
        bounds.sort_unstable();
        let partition = dtn_sim::Partition::from_bounds(bounds);

        let cfg = SimConfig {
            nodes: 10,
            buffer_capacity: 4096,
            horizon: Time::from_secs(300),
            ttl: ttl.map(TimeDelta::from_secs),
            ..SimConfig::default()
        };
        let serial = Simulation::new(
            cfg.clone(),
            Schedule::new(windows.clone()),
            Workload::new(specs.clone()),
        )
        .with_churn(churn_events.clone())
        .run(&mut ShardFlood);

        let mut contact_src = windows.iter().copied();
        let mut packet_src = specs.iter().copied();
        let sharded = dtn_sim::run_sharded(
            &cfg,
            &partition,
            &mut contact_src,
            &mut packet_src,
            &churn_events,
            None,
            &mut || Box::new(ShardFlood),
        );
        prop_assert_eq!(
            serial,
            sharded,
            "sharded run diverged from the serial engine under partition {:?}",
            partition
        );

        // Same scenario and partition through the stateful NodeDisjoint
        // tier: one shared instance, hooks routed to per-node partitions.
        let serial_mem = Simulation::new(
            cfg.clone(),
            Schedule::new(windows.clone()),
            Workload::new(specs.clone()),
        )
        .with_churn(churn_events.clone())
        .run(&mut MemFlood::new());

        let mut contact_src = windows.iter().copied();
        let mut packet_src = specs.iter().copied();
        let (sharded_mem, stats) = dtn_sim::run_sharded_with_stats(
            &cfg,
            &partition,
            &mut contact_src,
            &mut packet_src,
            &churn_events,
            None,
            &mut || Box::new(MemFlood::new()),
        );
        prop_assert_eq!(
            serial_mem,
            sharded_mem,
            "stateful NodeDisjoint sharded run diverged under partition {:?}",
            partition
        );
        prop_assert!(stats
            .iter()
            .all(|s| s.concurrency == ContactConcurrency::NodeDisjoint));
    }
}
