//! Property tests for the simulator's data structures, against simple
//! reference models.

use dtn_sim::{AckTable, NodeBuffer, NodeId, PacketId, PacketSet, Time};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum BufOp {
    Insert(u32, u64),
    Remove(u32),
}

fn buf_ops() -> impl Strategy<Value = Vec<BufOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..50, 1u64..2_000).prop_map(|(id, s)| BufOp::Insert(id, s)),
            (0u32..50).prop_map(BufOp::Remove),
        ],
        1..100,
    )
}

proptest! {
    #[test]
    fn buffer_accounting_matches_model(ops in buf_ops(), cap in 1_000u64..50_000) {
        let mut buf = NodeBuffer::new(cap);
        let mut model: std::collections::BTreeMap<u32, u64> = Default::default();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                BufOp::Insert(id, size) => {
                    let fits = !model.contains_key(&id)
                        && model.values().sum::<u64>() + size <= cap;
                    let ok = buf.insert(PacketId(id), size, Time::from_secs(step as u64));
                    prop_assert_eq!(ok, fits, "insert outcome mismatch");
                    if ok {
                        model.insert(id, size);
                    }
                }
                BufOp::Remove(id) => {
                    let ok = buf.remove(PacketId(id));
                    prop_assert_eq!(ok, model.remove(&id).is_some());
                }
            }
            prop_assert_eq!(buf.used_bytes(), model.values().sum::<u64>());
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.free_bytes(), cap - buf.used_bytes());
            let ids: Vec<u32> = buf.ids().iter().map(|p| p.0).collect();
            let expect: Vec<u32> = model.keys().copied().collect();
            prop_assert_eq!(ids, expect, "id-ordered iteration");
        }
    }

    #[test]
    fn packet_set_matches_btreeset(inserts in prop::collection::vec(0u32..500, 1..200)) {
        let mut set = PacketSet::new();
        let mut model = BTreeSet::new();
        for id in &inserts {
            prop_assert_eq!(set.insert(PacketId(*id)), model.insert(*id));
        }
        prop_assert_eq!(set.len(), model.len());
        let got: Vec<u32> = set.iter().map(|p| p.0).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, expect);
        for probe in 0u32..500 {
            prop_assert_eq!(set.contains(PacketId(probe)), model.contains(&probe));
        }
    }

    #[test]
    fn ack_exchange_reaches_fixed_point(
        learns in prop::collection::vec((0u32..4, 0u32..100), 1..60),
    ) {
        let mut t = AckTable::new(4);
        for &(node, pkt) in &learns {
            t.learn(NodeId(node), PacketId(pkt));
        }
        // A full gossip round among all pairs...
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                let _ = t.exchange(NodeId(a), NodeId(b));
            }
        }
        // ...then every further exchange moves nothing (fixed point), and
        // every node knows every learned packet.
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                prop_assert_eq!(t.exchange(NodeId(a), NodeId(b)), (0, 0));
            }
        }
        for &(_, pkt) in &learns {
            for node in 0..4u32 {
                prop_assert!(t.knows(NodeId(node), PacketId(pkt)));
            }
        }
    }
}
