//! Property tests for the compressed contact-plan layer: lazy expansion
//! must be byte-identical to the materialized schedule for every atom
//! kind, through compression, binary round-trips, and a full engine run
//! with churn-interrupted windows.

use dtn_sim::workload::{PacketSpec, Workload};
use dtn_sim::{
    run_streaming, CompiledPlan, ContactDriver, ContactWindow, NodeEvent, NodeId, PlanAtom,
    Routing, Schedule, ScheduleStream, SimConfig, Time, TimeDelta, TransferOutcome, WorkloadStream,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Arbitrary windows over a deliberately small time range so ties (equal
/// starts, same pair, same shape) and repeated cadences are common — the
/// cases where run compression has to keep the stable order exactly.
fn window_strategy() -> impl Strategy<Value = ContactWindow> {
    (
        0u64..400,
        0u32..10,
        0u32..10,
        1u64..5_000,
        1u64..30,
        any::<bool>(),
    )
        .prop_map(|(t, a, b, bytes, dur, instant)| {
            let b = if b == a { (a + 1) % 10 } else { b };
            if instant {
                ContactWindow::instant(Time::from_secs(t), NodeId(a), NodeId(b), bytes)
            } else {
                ContactWindow::new(
                    Time::from_secs(t),
                    Time::from_secs(t + dur),
                    NodeId(a),
                    NodeId(b),
                    bytes,
                )
            }
        })
}

/// One arbitrary plan atom: literal, periodic (zero periods allowed —
/// in-atom ties), or delta run (zero deltas allowed).
fn atom_strategy() -> impl Strategy<Value = PlanAtom> {
    let literal = window_strategy().prop_map(PlanAtom::Literal);
    let periodic = (window_strategy(), 0u64..50, 2u32..20).prop_map(|(t, period, repeats)| {
        PlanAtom::Periodic {
            template: t,
            period: TimeDelta::from_secs(period),
            repeats,
        }
    });
    let delta =
        (window_strategy(), prop::collection::vec(0u64..50, 1..10)).prop_map(|(t, deltas)| {
            PlanAtom::DeltaRun {
                template: t,
                deltas: deltas.into_iter().map(TimeDelta::from_secs).collect(),
            }
        });
    prop_oneof![literal, periodic, delta]
}

/// Reference expansion of one atom, in emission order.
fn expand_atom(atom: &PlanAtom) -> Vec<ContactWindow> {
    let t = atom.template();
    match atom {
        PlanAtom::Literal(w) => vec![*w],
        PlanAtom::Periodic {
            period, repeats, ..
        } => (0..*repeats)
            .map(|k| t.shifted(TimeDelta(period.0 * u64::from(k))))
            .collect(),
        PlanAtom::DeltaRun { deltas, .. } => {
            let mut out = vec![*t];
            let mut offset = 0u64;
            for d in deltas {
                offset += d.0;
                out.push(t.shifted(TimeDelta(offset)));
            }
            out
        }
    }
}

proptest! {
    /// Compressing any window multiset and expanding it lazily reproduces
    /// `Schedule::new`'s stable start order window-for-window, and the
    /// compact binary form round-trips to the same expansion.
    #[test]
    fn compression_round_trips_any_schedule(
        windows in prop::collection::vec(window_strategy(), 1..120),
    ) {
        let schedule = Schedule::new(windows);
        let plan = Arc::new(CompiledPlan::compress_schedule(&schedule));
        prop_assert_eq!(plan.window_count(), schedule.len() as u64);
        prop_assert_eq!(plan.node_count_hint(), schedule.node_count_hint());

        let streamed: Vec<ContactWindow> = plan.stream().collect();
        prop_assert_eq!(streamed.as_slice(), schedule.windows(), "lazy expansion order");
        prop_assert_eq!(&plan.materialize(), &schedule, "eager expansion");

        // Binary round-trip: window → record forms are exact for both
        // constructor shapes (instant lumps, durative rates).
        let bytes = plan.to_record_plan().to_bytes();
        let decoded = dtn_trace::RecordPlan::from_bytes(&bytes).expect("self-encoded plan");
        let back = CompiledPlan::from_record_plan(&decoded);
        prop_assert_eq!(&back.materialize(), &schedule, "binary round-trip");
    }

    /// For any atom list — literals, periodic generators (including zero
    /// periods) and delta runs (including zero deltas) — the merge heap
    /// emits exactly the stable sort-by-start of the concatenated per-atom
    /// expansions, and the cursor's size hint is exact.
    #[test]
    fn lazy_merge_equals_stable_sorted_concatenation(
        atoms in prop::collection::vec(atom_strategy(), 1..25),
    ) {
        let plan = Arc::new(CompiledPlan::new(atoms));
        let mut reference: Vec<ContactWindow> =
            plan.atoms().iter().flat_map(expand_atom).collect();
        reference.sort_by_key(|w| w.start); // stable: in-atom/tie order kept

        let mut cursor = plan.stream();
        prop_assert_eq!(cursor.size_hint(), (reference.len(), Some(reference.len())));
        let streamed: Vec<ContactWindow> = cursor.by_ref().collect();
        prop_assert_eq!(streamed, reference);
        prop_assert_eq!(cursor.size_hint(), (0, Some(0)));
        prop_assert_eq!(plan.window_count() as usize, plan.materialize().len());
    }
}

/// A minimal flooding protocol: every contact tries to push everything
/// both ways until bandwidth runs out.
struct Flood;

impl Routing for Flood {
    fn name(&self) -> String {
        "plan-flood".into()
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for from in [a, b] {
            for id in driver.buffer(from).ids() {
                if driver.try_transfer(from, id) == TransferOutcome::NoBandwidth {
                    break;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Whole-engine equivalence: a run driven from the compressed plan's
    /// cursor equals the run driven from the materialized schedule —
    /// including durative windows interrupted mid-flight by node churn.
    #[test]
    fn engine_run_from_plan_equals_materialized(
        windows in prop::collection::vec(window_strategy(), 1..60),
        packets in prop::collection::vec(
            (0u64..300, 0u32..10, 0u32..10, 128u64..1024),
            1..30,
        ),
        churn in prop::collection::vec((0u64..400, 0u32..10, any::<bool>()), 0..12),
        ttl in prop::option::of(20u64..200),
    ) {
        let schedule = Schedule::new(windows);
        let plan = Arc::new(CompiledPlan::compress_schedule(&schedule));
        let specs: Vec<PacketSpec> = packets
            .iter()
            .map(|&(t, src, dst, size)| {
                let dst = if dst == src { (src + 1) % 10 } else { dst };
                PacketSpec {
                    time: Time::from_secs(t),
                    src: NodeId(src),
                    dst: NodeId(dst),
                    size_bytes: size,
                }
            })
            .collect();
        let workload = Arc::new(Workload::new(specs));
        let mut churn: Vec<NodeEvent> = churn
            .into_iter()
            .map(|(t, node, up)| NodeEvent {
                time: Time::from_secs(t),
                node: NodeId(node),
                up,
            })
            .collect();
        churn.sort_by_key(|e| e.time);
        let config = SimConfig {
            nodes: 10,
            buffer_capacity: 8 * 1024,
            horizon: Time::from_secs(500),
            ttl: ttl.map(TimeDelta::from_secs),
            ..SimConfig::default()
        };

        let materialized = run_streaming(
            &config,
            &mut ScheduleStream::new(Arc::new(schedule)),
            &mut WorkloadStream::new(Arc::clone(&workload)),
            &churn,
            None,
            &mut Flood,
        );
        let compressed = run_streaming(
            &config,
            &mut plan.stream(),
            &mut WorkloadStream::new(workload),
            &churn,
            None,
            &mut Flood,
        );
        prop_assert_eq!(materialized, compressed, "plan-driven run diverged");
    }
}
