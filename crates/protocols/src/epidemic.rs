//! Epidemic routing (Vahdat & Becker; P1 in the paper's Table 1).
//!
//! Unbounded flooding: at every contact each side hands the peer every
//! packet it does not already have, oldest first. With unlimited resources
//! epidemic is delay-optimal; under the paper's finite opportunities and
//! buffers "naive flooding wastes resources and can severely degrade
//! performance" (§2) — which makes it a useful sanity baseline for the
//! resource-constrained experiments.

use crate::common::{deliver_destined, replication_candidates};
use dtn_sim::{
    ContactConcurrency, ContactDriver, ContactPool, NodeBuffer, NodeId, Packet, PacketId,
    PacketStore, Routing, SimConfig, SlicePartition, Time, TransferOutcome,
};

/// Unbounded flooding.
#[derive(Debug, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Creates the flooding protocol.
    pub fn new() -> Self {
        Self
    }
}

impl Routing for Epidemic {
    fn name(&self) -> String {
        "Epidemic".into()
    }

    fn on_init(&mut self, _config: &SimConfig) {}

    fn make_room(
        &mut self,
        _node: NodeId,
        _incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        // Drop the newest packets first (drop-tail on creation age): the
        // oldest copies have spread furthest and are closest to delivery.
        let mut scored: Vec<(dtn_sim::Time, PacketId, u64)> = buffer
            .iter()
            .map(|(id, meta)| (packets.get(id).created_at, id, meta.size_bytes))
            .collect();
        scored.sort_unstable_by_key(|&(created, id, _)| std::cmp::Reverse((created, id)));
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for (_, id, size) in scored {
            if freed >= needed {
                break;
            }
            freed += size;
            victims.push(id);
        }
        if freed >= needed {
            victims
        } else {
            Vec::new()
        }
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        Self::contact_core(driver);
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        // Flooding keeps no protocol state at all: contacts are a pure
        // function of the driver, so node-disjoint ones commute and
        // identically-built instances are interchangeable (the sharded
        // runtime's contract).
        ContactConcurrency::Stateless
    }

    fn on_contact_batch(&mut self, batch: &mut [ContactDriver<'_>], pool: &ContactPool) {
        let drivers = SlicePartition::new(batch);
        pool.run(drivers.len(), &|_worker, i| {
            // SAFETY: each batch index is claimed by exactly one worker
            // (ContactPool::run) and drivers address disjoint world slices
            // (the engine's node-disjoint batch contract).
            Self::contact_core(unsafe { drivers.get_mut(i) });
        });
    }
}

impl Epidemic {
    /// One flooding contact; free of `self`, so batches parallelize.
    fn contact_core(driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for x in [a, b] {
            let _ = deliver_destined(driver, x);
        }
        for x in [a, b] {
            let mut candidates = replication_candidates(driver, x);
            candidates.sort_unstable_by_key(|&id| {
                let p = driver.packets().get(id);
                (p.created_at, id)
            });
            for id in candidates {
                // Flooding does not evict at the receiver: a full buffer
                // simply rejects new replicas, so only bandwidth stops us.
                if driver.try_transfer(x, id) == TransferOutcome::NoBandwidth {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), 1 << 20)
    }

    #[test]
    fn floods_to_everyone() {
        let cfg = SimConfig {
            nodes: 4,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![
                contact(10, 0, 1),
                contact(20, 1, 2),
                contact(30, 2, 3),
            ]),
            Workload::new(vec![spec(0, 0, 3)]),
        );
        let r = sim.run(&mut Epidemic::new());
        assert_eq!(r.delivered(), 1);
        // Replicated 0→1, 1→2; delivered 2→3.
        assert_eq!(r.replications, 2);
    }

    #[test]
    fn oldest_spread_first_under_bandwidth_pressure() {
        let cfg = SimConfig {
            nodes: 3,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(50),
                NodeId(0),
                NodeId(1),
                1024, // one packet only
            )]),
            Workload::new(vec![spec(20, 0, 2), spec(10, 0, 2)]),
        );
        let r = sim.run(&mut Epidemic::new());
        assert_eq!(r.replications, 1);
        // The replica that moved is the older one (created at 10).
        let moved: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| o.created_at == Time::from_secs(10))
            .collect();
        assert_eq!(moved.len(), 1);
    }

    #[test]
    fn full_buffer_rejects_without_eviction() {
        let cfg = SimConfig {
            nodes: 3,
            buffer_capacity: 1024,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![contact(50, 0, 1)]),
            // Node 1 already holds its own packet; node 0 tries to flood.
            Workload::new(vec![spec(0, 1, 2), spec(1, 0, 2)]),
        );
        let r = sim.run(&mut Epidemic::new());
        assert_eq!(r.replications, 0, "no eviction in flooding");
    }
}
