//! Building blocks shared by the baseline protocols.

use dtn_sim::{ContactDriver, NodeId, PacketId, TransferOutcome};

/// Delivers every packet destined to the peer, oldest first, until the
/// opportunity in that direction runs out. Returns the ids delivered
/// (first-time or duplicate — bandwidth was spent either way).
///
/// The buffer's per-destination delivery queue is already in
/// `(created_at, id)` order, so no scan or sort is needed — the transfer
/// loop just walks a snapshot of that queue (a snapshot because transfers
/// mutate the buffer).
pub fn deliver_destined(driver: &mut ContactDriver<'_>, from: NodeId) -> Vec<PacketId> {
    let to = driver.peer_of(from);
    let destined: Vec<PacketId> = driver.buffer(from).queue(to).iter().map(|e| e.id).collect();
    let mut delivered = Vec::new();
    for id in destined {
        match driver.try_transfer(from, id) {
            TransferOutcome::Delivered | TransferOutcome::DeliveredDuplicate => {
                delivered.push(id);
            }
            TransferOutcome::NoBandwidth => break,
            _ => {}
        }
    }
    delivered
}

/// The replication candidates from `from` towards its peer: buffered
/// packets not destined to the peer and not already held by it.
pub fn replication_candidates(driver: &ContactDriver<'_>, from: NodeId) -> Vec<PacketId> {
    let to = driver.peer_of(from);
    driver
        .buffer(from)
        .iter()
        .map(|(id, _)| id)
        .filter(|&id| driver.packets().get(id).dst != to && !driver.buffer(to).contains(id))
        .collect()
}

/// Evicts victims produced by `next_victim` until `needed` bytes are free
/// at `node`; returns whether enough space was freed. `next_victim` is
/// called with the ids still evictable (it pops its choice).
pub fn evict_until(
    driver: &mut ContactDriver<'_>,
    node: NodeId,
    needed: u64,
    victims: &mut Vec<PacketId>,
) -> bool {
    let mut freed = 0u64;
    while freed < needed {
        let Some(victim) = victims.pop() else {
            return false;
        };
        let size = driver.packets().get(victim).size_bytes;
        if driver.evict(node, victim) {
            freed += size;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, ContactDriver, NodeId, Routing, Schedule, SimConfig, Simulation, Time};

    struct Probe {
        delivered: usize,
        candidates: usize,
    }

    impl Routing for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
            let (a, _) = driver.endpoints();
            self.candidates = super::replication_candidates(driver, a).len();
            self.delivered = super::deliver_destined(driver, a).len();
        }
    }

    #[test]
    fn helpers_deliver_and_enumerate() {
        let cfg = SimConfig {
            nodes: 3,
            horizon: Time::from_secs(100),
            ..SimConfig::default()
        };
        let sim = Simulation::new(
            cfg,
            Schedule::new(vec![Contact::new(
                Time::from_secs(10),
                NodeId(0),
                NodeId(1),
                1 << 20,
            )]),
            Workload::new(vec![
                PacketSpec {
                    time: Time::from_secs(1),
                    src: NodeId(0),
                    dst: NodeId(1),
                    size_bytes: 1024,
                },
                PacketSpec {
                    time: Time::from_secs(2),
                    src: NodeId(0),
                    dst: NodeId(2),
                    size_bytes: 1024,
                },
            ]),
        );
        let mut p = Probe {
            delivered: 0,
            candidates: 0,
        };
        let r = sim.run(&mut p);
        assert_eq!(p.delivered, 1);
        assert_eq!(p.candidates, 1, "the packet for node 2 is a candidate");
        assert_eq!(r.delivered(), 1);
    }
}
