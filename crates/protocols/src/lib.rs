//! Baseline DTN routing protocols the paper compares RAPID against (§6.1):
//!
//! * [`maxprop::MaxProp`] — Burgess et al., the second-best performer and
//!   the only other protocol designed for finite storage *and* bandwidth.
//! * [`spray_wait::SprayAndWait`] — binary Spray and Wait with `L = 12`
//!   (the paper sets `L` "based on consultation with authors and using
//!   LEMMA 4.3 ... with a = 4").
//! * [`prophet::Prophet`] — probabilistic routing with
//!   `P_init = 0.75, β = 0.25, γ = 0.98` (the paper's parameters).
//! * [`random::Random`] — replicates randomly chosen packets for the whole
//!   opportunity; optionally with flooded delivery acknowledgments
//!   (the "Random with acks" component of §6.2.6).
//! * [`epidemic::Epidemic`] — unbounded flooding (P1 in Table 1), kept as a
//!   sanity baseline.
//!
//! Per the paper's methodology, the control traffic of these baselines is
//! *not* charged against the data channel ("In all experiments, we include
//! the cost of **rapid's** in-band control channel") — acks are the one
//! exception, charged for Random-with-acks so Fig. 14 is honest about its
//! cost. All protocols perform direct delivery before replication; none
//! fragments packets.

pub mod common;
pub mod epidemic;
pub mod maxprop;
pub mod prophet;
pub mod random;
pub mod spray_wait;

pub use epidemic::Epidemic;
pub use maxprop::MaxProp;
pub use prophet::Prophet;
pub use random::Random;
pub use spray_wait::SprayAndWait;
