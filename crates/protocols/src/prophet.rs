//! PRoPHET — Probabilistic Routing Protocol using History of Encounters
//! and Transitivity (Lindgren et al.; §6.1 of the paper).
//!
//! Every node keeps a delivery predictability `P(x, z) ∈ [0, 1]` for every
//! destination:
//!
//! * **Encounter**: on meeting `y`, `P(x,y) ← P(x,y) + (1 − P(x,y))·P_init`.
//! * **Aging**: `P ← P · γ^k`, `k` time units since the last aging.
//! * **Transitivity**: `P(x,z) ← max(P(x,z), P(x,y)·P(y,z)·β)`.
//!
//! A packet is replicated to a peer with higher predictability for its
//! destination. The paper uses `P_init = 0.75, β = 0.25, γ = 0.98`; the
//! time unit is a scenario parameter (Lindgren et al. leave it workload
//! dependent) — the default here is 60 s, giving meaningful decay at
//! vehicular meeting cadences. Eviction is FIFO (the Lindgren default).
//! Per the paper's methodology its control traffic is not charged.

use crate::common::{deliver_destined, evict_until, replication_candidates};
use dtn_sim::{
    ContactDriver, NodeBuffer, NodeId, Packet, PacketId, PacketStore, Routing, SimConfig, Time,
    TransferOutcome,
};

/// PRoPHET parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProphetParams {
    /// Encounter increment (paper: 0.75).
    pub p_init: f64,
    /// Transitivity damping (paper: 0.25).
    pub beta: f64,
    /// Aging base (paper: 0.98).
    pub gamma: f64,
    /// Seconds per aging time unit.
    pub time_unit_secs: f64,
}

impl Default for ProphetParams {
    fn default() -> Self {
        Self {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            time_unit_secs: 60.0,
        }
    }
}

/// The PRoPHET protocol.
pub struct Prophet {
    params: ProphetParams,
    /// `p[x][z]`: x's delivery predictability for z.
    p: Vec<Vec<f64>>,
    /// Last aging instant per node.
    last_aged: Vec<Time>,
}

impl Prophet {
    /// PRoPHET with the paper's parameters.
    pub fn new() -> Self {
        Self::with_params(ProphetParams::default())
    }

    /// PRoPHET with custom parameters.
    pub fn with_params(params: ProphetParams) -> Self {
        assert!(params.p_init > 0.0 && params.p_init <= 1.0);
        assert!(params.beta >= 0.0 && params.beta <= 1.0);
        assert!(params.gamma > 0.0 && params.gamma < 1.0);
        assert!(params.time_unit_secs > 0.0);
        Self {
            params,
            p: Vec::new(),
            last_aged: Vec::new(),
        }
    }

    /// Current predictability `P(x, z)`.
    pub fn predictability(&self, x: NodeId, z: NodeId) -> f64 {
        self.p[x.index()][z.index()]
    }

    fn age(&mut self, x: NodeId, now: Time) {
        let dt = now.since(self.last_aged[x.index()]).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        let factor = self.params.gamma.powf(dt / self.params.time_unit_secs);
        for v in &mut self.p[x.index()] {
            *v *= factor;
        }
        self.last_aged[x.index()] = now;
    }
}

impl Default for Prophet {
    fn default() -> Self {
        Self::new()
    }
}

impl Routing for Prophet {
    fn name(&self) -> String {
        "Prophet".into()
    }

    fn on_init(&mut self, config: &SimConfig) {
        self.p = vec![vec![0.0; config.nodes]; config.nodes];
        self.last_aged = vec![Time::ZERO; config.nodes];
    }

    fn make_room(
        &mut self,
        _node: NodeId,
        _incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        _packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        // FIFO: evict the replicas received longest ago.
        let mut ids: Vec<(Time, PacketId)> = buffer
            .iter()
            .map(|(id, meta)| (meta.stored_at, id))
            .collect();
        ids.sort_unstable();
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for (_, id) in ids {
            if freed >= needed {
                break;
            }
            freed += buffer.meta(id).expect("id from buffer").size_bytes;
            victims.push(id);
        }
        if freed >= needed {
            victims
        } else {
            Vec::new()
        }
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        let now = driver.now();

        // Age both vectors, apply the encounter update, then transitivity
        // using the peer's (just-exchanged) vector.
        self.age(a, now);
        self.age(b, now);
        for (x, y) in [(a, b), (b, a)] {
            let old = self.p[x.index()][y.index()];
            self.p[x.index()][y.index()] = old + (1.0 - old) * self.params.p_init;
        }
        let pa = self.p[a.index()].clone();
        let pb = self.p[b.index()].clone();
        for z in 0..self.p.len() {
            let via_b = pa[b.index()] * pb[z] * self.params.beta;
            if via_b > self.p[a.index()][z] {
                self.p[a.index()][z] = via_b;
            }
            let via_a = pb[a.index()] * pa[z] * self.params.beta;
            if via_a > self.p[b.index()][z] {
                self.p[b.index()][z] = via_a;
            }
        }

        for x in [a, b] {
            let _ = deliver_destined(driver, x);
        }

        // Replicate where the peer is a strictly better custodian,
        // best-predictability-first.
        for x in [a, b] {
            let y = driver.peer_of(x);
            let mut scored: Vec<(f64, PacketId)> = replication_candidates(driver, x)
                .into_iter()
                .filter_map(|id| {
                    let dst = driver.packets().get(id).dst;
                    let py = self.p[y.index()][dst.index()];
                    let px = self.p[x.index()][dst.index()];
                    (py > px).then_some((py, id))
                })
                .collect();
            scored.sort_unstable_by(|l, r| {
                r.0.partial_cmp(&l.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(l.1.cmp(&r.1))
            });
            for (_, id) in scored {
                loop {
                    match driver.try_transfer(x, id) {
                        TransferOutcome::NeedsSpace(needed) => {
                            // FIFO eviction at the receiver.
                            let mut pool: Vec<(Time, PacketId)> = driver
                                .buffer(y)
                                .iter()
                                .map(|(pid, meta)| (meta.stored_at, pid))
                                .collect();
                            pool.sort_unstable_by_key(|&(t, pid)| std::cmp::Reverse((t, pid)));
                            let mut victims: Vec<PacketId> =
                                pool.into_iter().map(|(_, pid)| pid).collect();
                            if !evict_until(driver, y, needed, &mut victims) {
                                break;
                            }
                        }
                        TransferOutcome::NoBandwidth => return,
                        _ => break,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), 1 << 20)
    }

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(10_000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn encounter_update_math() {
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(2),
            Schedule::new(vec![contact(10, 0, 1)]),
            Workload::default(),
        );
        let _ = sim.run(&mut pr);
        // One encounter: P = 0 + (1-0)*0.75.
        assert!((pr.predictability(NodeId(0), NodeId(1)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn repeated_encounters_approach_one() {
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(2),
            Schedule::new((1..=20).map(|k| contact(k, 0, 1)).collect()),
            Workload::default(),
        );
        let _ = sim.run(&mut pr);
        assert!(pr.predictability(NodeId(0), NodeId(1)) > 0.95);
    }

    #[test]
    fn aging_decays_predictability() {
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(10, 0, 1),
                // Much later: 0 meets 2; P(0,1) must have decayed.
                contact(10 + 3600, 0, 2),
            ]),
            Workload::default(),
        );
        let _ = sim.run(&mut pr);
        let p01 = pr.predictability(NodeId(0), NodeId(1));
        // 0.75 · 0.98^(3600/60) ≈ 0.75 · 0.298 ≈ 0.224.
        assert!((p01 - 0.75 * 0.98f64.powf(60.0)).abs() < 1e-6, "{p01}");
    }

    #[test]
    fn transitivity_builds_indirect_predictability() {
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(10, 1, 2), contact(20, 0, 1)]),
            Workload::default(),
        );
        let _ = sim.run(&mut pr);
        let p02 = pr.predictability(NodeId(0), NodeId(2));
        assert!(p02 > 0.0, "transitivity must give 0 some P(0,2)");
        assert!(p02 < pr.predictability(NodeId(0), NodeId(1)));
    }

    #[test]
    fn forwards_only_to_better_custodians() {
        // Node 1 meets the destination often → higher P. Node 3 never does.
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(4),
            Schedule::new(vec![
                contact(5, 1, 2),
                contact(15, 1, 2),
                contact(30, 0, 1), // should replicate: P(1,2) > P(0,2)
                contact(40, 0, 3), // must not replicate: P(3,2) = 0
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut pr);
        assert_eq!(r.replications, 1, "only the good custodian gets a copy");
    }

    #[test]
    fn end_to_end_delivery_via_custodian() {
        let mut pr = Prophet::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(5, 1, 2),
                contact(15, 1, 2),
                contact(30, 0, 1),
                contact(45, 1, 2),
            ]),
            Workload::new(vec![spec(20, 0, 2)]),
        );
        let r = sim.run(&mut pr);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 25.0).abs() < 1e-9);
    }
}
