//! Binary Spray and Wait (Spyropoulos et al.; §6.1 of the paper).
//!
//! Each packet starts with `L` logical copies at its source. **Spray**: a
//! node holding `c > 1` copies that meets a node without the packet hands
//! over the replica together with `⌊c/2⌋` of the copies, keeping `⌈c/2⌉`
//! (the *binary* variant). **Wait**: a node with `c = 1` holds its single
//! copy until it meets the destination. The paper sets `L = 12` (from
//! Lemma 4.3 of the Spray and Wait paper with `a = 4`).
//!
//! Spray and Wait "does not take into account bandwidth or storage
//! constraints" (§2): under pressure it sprays oldest-first and deletes
//! randomly (§6.3.2).

use crate::common::{deliver_destined, evict_until, replication_candidates};
use dtn_sim::{
    ContactDriver, NodeBuffer, NodeId, Packet, PacketId, PacketStore, Routing, SimConfig, Time,
    TransferOutcome,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// Binary Spray and Wait.
pub struct SprayAndWait {
    /// Initial copy budget `L`.
    l: u32,
    /// Copies held: `(node, packet) → c`.
    copies: HashMap<(u32, u32), u32>,
    rng: StdRng,
}

impl SprayAndWait {
    /// Creates binary Spray and Wait with the paper's `L = 12`.
    pub fn new() -> Self {
        Self::with_copies(12)
    }

    /// Creates binary Spray and Wait with a custom `L`.
    pub fn with_copies(l: u32) -> Self {
        assert!(l >= 1, "need at least one copy");
        Self {
            l,
            copies: HashMap::new(),
            rng: dtn_stats::stream(0, "spray-wait"),
        }
    }

    /// Copies of `packet` held by `node` (0 if none).
    pub fn copies_at(&self, node: NodeId, packet: PacketId) -> u32 {
        self.copies.get(&(node.0, packet.0)).copied().unwrap_or(0)
    }
}

impl Default for SprayAndWait {
    fn default() -> Self {
        Self::new()
    }
}

impl Routing for SprayAndWait {
    fn name(&self) -> String {
        format!("SprayAndWait(L={})", self.l)
    }

    fn on_init(&mut self, config: &SimConfig) {
        self.copies.clear();
        self.rng = dtn_stats::stream(config.seed, "spray-wait");
    }

    fn on_packet_created(&mut self, packet: &Packet) {
        self.copies.insert((packet.src.0, packet.id.0), self.l);
    }

    fn make_room(
        &mut self,
        _node: NodeId,
        _incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        _packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        let mut ids = buffer.ids();
        ids.shuffle(&mut self.rng);
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for id in ids {
            if freed >= needed {
                break;
            }
            freed += buffer.meta(id).expect("id from buffer").size_bytes;
            victims.push(id);
        }
        if freed >= needed {
            victims
        } else {
            Vec::new()
        }
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for x in [a, b] {
            for id in deliver_destined(driver, x) {
                self.copies.remove(&(x.0, id.0));
            }
        }
        for x in [a, b] {
            let y = driver.peer_of(x);
            // Spray phase: only packets with more than one copy.
            let mut sprayable: Vec<PacketId> = replication_candidates(driver, x)
                .into_iter()
                .filter(|&id| self.copies_at(x, id) > 1)
                .collect();
            sprayable.sort_unstable_by_key(|&id| {
                let p = driver.packets().get(id);
                (p.created_at, id)
            });
            for id in sprayable {
                loop {
                    match driver.try_transfer(x, id) {
                        TransferOutcome::Replicated => {
                            let c = self.copies_at(x, id);
                            debug_assert!(c > 1);
                            let give = c / 2;
                            self.copies.insert((x.0, id.0), c - give);
                            self.copies.insert((y.0, id.0), give);
                            break;
                        }
                        TransferOutcome::NeedsSpace(needed) => {
                            let mut pool = driver.buffer(y).ids();
                            pool.shuffle(&mut self.rng);
                            if !evict_until(driver, y, needed, &mut pool) {
                                break;
                            }
                        }
                        TransferOutcome::NoBandwidth => return,
                        _ => break,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), 1 << 20)
    }

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(1000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn binary_halving_of_copies() {
        let mut sw = SprayAndWait::with_copies(12);
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(10, 0, 1)]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let _ = sim.run(&mut sw);
        assert_eq!(sw.copies_at(NodeId(0), PacketId(0)), 6);
        assert_eq!(sw.copies_at(NodeId(1), PacketId(0)), 6);
    }

    #[test]
    fn wait_phase_blocks_further_spraying() {
        // L=2: after one spray both holders have c=1 and must wait.
        let mut sw = SprayAndWait::with_copies(2);
        let sim = Simulation::new(
            cfg(4),
            Schedule::new(vec![
                contact(10, 0, 1), // spray: 0 and 1 now have c=1
                contact(20, 0, 2), // wait phase: no spray to 2
                contact(30, 1, 2), // wait phase: no spray either
            ]),
            Workload::new(vec![spec(0, 0, 3)]),
        );
        let r = sim.run(&mut sw);
        assert_eq!(r.replications, 1, "only the first spray");
        assert_eq!(sw.copies_at(NodeId(2), PacketId(0)), 0);
    }

    #[test]
    fn wait_phase_still_delivers_directly() {
        let mut sw = SprayAndWait::with_copies(1);
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(10, 0, 1), // c=1: no spray
                contact(20, 0, 2), // destination: deliver
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut sw);
        assert_eq!(r.replications, 0);
        assert_eq!(r.delivered(), 1);
    }

    #[test]
    fn copy_budget_is_conserved() {
        let mut sw = SprayAndWait::with_copies(12);
        let sim = Simulation::new(
            cfg(5),
            Schedule::new(vec![
                contact(10, 0, 1),
                contact(20, 1, 2),
                contact(30, 0, 3),
                contact(40, 2, 3),
            ]),
            Workload::new(vec![spec(0, 0, 4)]),
        );
        let _ = sim.run(&mut sw);
        let total: u32 = (0..5).map(|n| sw.copies_at(NodeId(n), PacketId(0))).sum();
        assert_eq!(total, 12, "copies are moved, never created");
    }

    #[test]
    fn l_one_is_direct_only() {
        let mut sw = SprayAndWait::with_copies(1);
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(10, 0, 1), contact(20, 1, 2)]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut sw);
        assert_eq!(r.delivered(), 0, "source never met the destination");
        assert_eq!(r.replications, 0);
    }
}
