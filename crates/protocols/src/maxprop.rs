//! MaxProp (Burgess, Gallagher, Jensen, Levine; Infocom 2006) — the
//! strongest baseline in the paper's evaluation and, like RAPID, designed
//! for finite storage and bandwidth (P5 in Table 1).
//!
//! Mechanisms reproduced from the MaxProp paper, as the RAPID paper uses
//! them (§6.1):
//!
//! * **Meeting likelihoods**: each node keeps an incrementally-averaged
//!   probability vector over peers (start uniform; on a meeting, add 1 to
//!   the met peer and renormalize). Vectors are exchanged at contacts.
//! * **Path cost**: the cost of reaching a destination is the minimum over
//!   paths of `Σ (1 − P(edge))` — computed with Dijkstra over the believed
//!   vectors.
//! * **Priorities**: destined packets first; then packets with hop count
//!   below a threshold, lowest hop count first ("MaxProp prioritizes new
//!   packets", §6.3.1); then the rest by lowest path cost.
//! * **Acks**: delivery acknowledgments are flooded and purge replicas.
//! * **Eviction**: drops the most-replicated/most-traveled packets first
//!   (highest hop count, then highest path cost) — §6.3.2's description.
//!
//! Per the paper's methodology, its control traffic is not charged against
//! the data channel.

use crate::common::{deliver_destined, evict_until, replication_candidates};
use dtn_sim::{
    AckTable, ContactDriver, NodeBuffer, NodeId, Packet, PacketId, PacketStore, Routing, SimConfig,
    Time, TransferOutcome,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Hop-count threshold below which packets are prioritized by hop count.
const HOP_PRIORITY_THRESHOLD: u32 = 3;

/// The MaxProp protocol.
pub struct MaxProp {
    /// Meeting counts: `counts[x][y]` = times x met y (plus-one smoothing).
    counts: Vec<Vec<f64>>,
    /// Believed probability vectors: `belief[x][u]` = x's copy of u's
    /// normalized vector, with a stamp.
    belief: Vec<Vec<(Vec<f64>, Time)>>,
    /// Hops traveled by each replica: `(node, packet) → hops from source`.
    hops: HashMap<(u32, u32), u32>,
    acks: AckTable,
}

impl MaxProp {
    /// Creates MaxProp.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            belief: Vec::new(),
            hops: HashMap::new(),
            acks: AckTable::new(0),
        }
    }

    /// x's normalized meeting-probability vector.
    fn own_vector(&self, x: NodeId) -> Vec<f64> {
        let row = &self.counts[x.index()];
        let total: f64 = row.iter().sum();
        if total == 0.0 {
            return vec![0.0; row.len()];
        }
        row.iter().map(|c| c / total).collect()
    }

    /// Dijkstra over believed vectors: cost from `x` to every node, where
    /// edge `u→v` costs `1 − P_u(v)`; edges with zero probability are
    /// unusable.
    pub fn path_costs(&self, x: NodeId) -> Vec<f64> {
        let n = self.counts.len();
        let mut dist = vec![f64::INFINITY; n];
        dist[x.index()] = 0.0;
        let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
        heap.push(Reverse((OrderedF64(0.0), x.index())));
        while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            let vector = if u == x.index() {
                self.own_vector(x)
            } else {
                self.belief[x.index()][u].0.clone()
            };
            for (v, &p) in vector.iter().enumerate() {
                if p <= 0.0 || v == u {
                    continue;
                }
                let nd = d + (1.0 - p);
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((OrderedF64(nd), v)));
                }
            }
        }
        dist
    }

    /// Hops traveled by the replica of `packet` held at `node`.
    pub fn hops_at(&self, node: NodeId, packet: PacketId) -> u32 {
        self.hops.get(&(node.0, packet.0)).copied().unwrap_or(0)
    }

    /// Eviction order at `node`: most-traveled (highest hops), then highest
    /// path cost, newest first — returned worst-first.
    fn eviction_order(
        &self,
        node: NodeId,
        buffer: &NodeBuffer,
        packets: &PacketStore,
    ) -> Vec<PacketId> {
        // Sort key: hop count, path cost, then newest-first tiebreak.
        type EvictionScore = (u32, OrderedF64, Reverse<(Time, PacketId)>, PacketId);
        let costs = self.path_costs(node);
        let mut scored: Vec<EvictionScore> = buffer
            .iter()
            .map(|(id, _)| {
                let p = packets.get(id);
                (
                    self.hops_at(node, id),
                    OrderedF64(costs[p.dst.index()]),
                    Reverse((p.created_at, id)),
                    id,
                )
            })
            .collect();
        scored.sort_unstable_by(|l, r| r.0.cmp(&l.0).then(r.1.cmp(&l.1)).then(l.2.cmp(&r.2)));
        scored.into_iter().map(|(_, _, _, id)| id).collect()
    }
}

impl Default for MaxProp {
    fn default() -> Self {
        Self::new()
    }
}

impl Routing for MaxProp {
    fn name(&self) -> String {
        "MaxProp".into()
    }

    fn on_init(&mut self, config: &SimConfig) {
        let n = config.nodes;
        self.counts = vec![vec![0.0; n]; n];
        self.belief = vec![vec![(vec![0.0; n], Time::ZERO); n]; n];
        self.hops = HashMap::new();
        self.acks = AckTable::new(n);
    }

    fn on_packet_created(&mut self, packet: &Packet) {
        self.hops.insert((packet.src.0, packet.id.0), 0);
    }

    fn make_room(
        &mut self,
        node: NodeId,
        _incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        let order = self.eviction_order(node, buffer, packets);
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for id in order {
            if freed >= needed {
                break;
            }
            freed += packets.get(id).size_bytes;
            victims.push(id);
        }
        if freed >= needed {
            victims
        } else {
            Vec::new()
        }
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        let now = driver.now();

        // Meeting likelihood update + vector exchange (not charged; §6.1).
        for (x, y) in [(a, b), (b, a)] {
            self.counts[x.index()][y.index()] += 1.0;
            let own = self.own_vector(x);
            self.belief[x.index()][x.index()] = (own, now);
        }
        // Swap all believed rows, freshest stamp wins (epidemic routing of
        // link state, as MaxProp does).
        for u in 0..self.counts.len() {
            let (ai, bi) = (a.index(), b.index());
            if self.belief[ai][u].1 > self.belief[bi][u].1 {
                self.belief[bi][u] = self.belief[ai][u].clone();
            } else if self.belief[bi][u].1 > self.belief[ai][u].1 {
                self.belief[ai][u] = self.belief[bi][u].clone();
            }
        }

        // Ack flooding and purge.
        let _ = self.acks.exchange(a, b);
        for x in [a, b] {
            for id in driver.buffer(x).ids() {
                if self.acks.knows(x, id) {
                    driver.evict(x, id);
                    self.hops.remove(&(x.0, id.0));
                }
            }
        }

        // Direct delivery.
        for x in [a, b] {
            for id in deliver_destined(driver, x) {
                self.acks.learn(x, id);
                self.acks.learn(driver.peer_of(x), id);
                self.hops.remove(&(x.0, id.0));
            }
        }

        // Replication by MaxProp priority.
        for x in [a, b] {
            let y = driver.peer_of(x);
            let costs = self.path_costs(y);
            let mut ranked: Vec<(u8, u32, OrderedF64, PacketId)> =
                replication_candidates(driver, x)
                    .into_iter()
                    .filter(|&id| !self.acks.knows(x, id))
                    .map(|id| {
                        let p = driver.packets().get(id);
                        let hops = self.hops_at(x, id);
                        let cost = OrderedF64(costs[p.dst.index()]);
                        if hops < HOP_PRIORITY_THRESHOLD {
                            (0u8, hops, cost, id)
                        } else {
                            (1u8, 0, cost, id)
                        }
                    })
                    .collect();
            ranked.sort_unstable_by(|l, r| {
                l.0.cmp(&r.0)
                    .then(l.1.cmp(&r.1))
                    .then(l.2.cmp(&r.2))
                    .then(l.3.cmp(&r.3))
            });
            for (_, _, _, id) in ranked {
                loop {
                    match driver.try_transfer(x, id) {
                        TransferOutcome::Replicated => {
                            let h = self.hops_at(x, id) + 1;
                            self.hops.insert((y.0, id.0), h);
                            break;
                        }
                        TransferOutcome::NeedsSpace(needed) => {
                            let mut order = {
                                let buffer = driver.buffer(y);
                                let packets = driver.packets();
                                self.eviction_order(y, buffer, packets)
                            };
                            order.reverse(); // evict_until pops from the end
                            if !evict_until(driver, y, needed, &mut order) {
                                break;
                            }
                        }
                        TransferOutcome::NoBandwidth => return,
                        _ => break,
                    }
                }
            }
        }
    }
}

/// Total-order wrapper for non-NaN f64 (Dijkstra keys, sort keys).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN in ordering key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), 1 << 20)
    }

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(10_000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn vectors_normalize() {
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(1, 0, 1), contact(2, 0, 1), contact(3, 0, 2)]),
            Workload::default(),
        );
        let _ = sim.run(&mut mp);
        let v = mp.own_vector(NodeId(0));
        assert!((v[1] - 2.0 / 3.0).abs() < 1e-9);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-9);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_costs_follow_meeting_probability() {
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(1, 0, 1),
                contact(2, 0, 1),
                contact(3, 1, 2),
                contact(4, 0, 1), // pick up 1's fresh vector
            ]),
            Workload::default(),
        );
        let _ = sim.run(&mut mp);
        let costs = mp.path_costs(NodeId(0));
        assert_eq!(costs[0], 0.0);
        assert!(costs[1] < 1.0, "direct edge exists");
        assert!(costs[2].is_finite(), "two-hop path through 1");
        assert!(costs[2] > costs[1]);
    }

    #[test]
    fn delivers_and_replicates_end_to_end() {
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(5, 1, 2), contact(15, 0, 1), contact(30, 1, 2)]),
            Workload::new(vec![spec(10, 0, 2)]),
        );
        let r = sim.run(&mut mp);
        assert_eq!(r.delivered(), 1);
        assert!((r.avg_delay_secs().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn acks_purge_replicas() {
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(10, 0, 1), // replicate
                contact(20, 0, 2), // deliver
                contact(30, 0, 1), // ack → purge at 1
                contact(40, 1, 2), // no duplicate
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut mp);
        assert_eq!(r.data_bytes, 2 * 1024);
    }

    #[test]
    fn hop_counts_accumulate() {
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            cfg(4),
            Schedule::new(vec![contact(10, 0, 1), contact(20, 1, 2)]),
            Workload::new(vec![spec(0, 0, 3)]),
        );
        let _ = sim.run(&mut mp);
        assert_eq!(mp.hops_at(NodeId(0), PacketId(0)), 0);
        assert_eq!(mp.hops_at(NodeId(1), PacketId(0)), 1);
        assert_eq!(mp.hops_at(NodeId(2), PacketId(0)), 2);
    }

    #[test]
    fn eviction_drops_most_traveled_first() {
        // Node 1's buffer: 2 slots. It holds a 1-hop replica and its own
        // packet; a new incoming replica should displace the traveled one
        // only (own packet has 0 hops).
        let c = SimConfig {
            buffer_capacity: 2048,
            ..cfg(4)
        };
        let mut mp = MaxProp::new();
        let sim = Simulation::new(
            c,
            Schedule::new(vec![
                contact(10, 0, 1), // replica of p0 (hops 1) at node 1
                contact(30, 2, 1), // p2's replica incoming; buffer full
            ]),
            Workload::new(vec![
                spec(0, 0, 3),  // p0: replicated to 1
                spec(5, 1, 3),  // p1: node 1's own
                spec(25, 2, 3), // p2: incoming at t=30
            ]),
        );
        let r = sim.run(&mut mp);
        // p0's replica at node 1 was evicted for p2.
        assert_eq!(mp.hops_at(NodeId(1), PacketId(2)), 1);
        assert!(r.replications >= 2);
    }
}
