//! Random replication (§6.1) and Random-with-acks (§6.2.6).
//!
//! "Random replicates randomly chosen packets for the duration of the
//! transfer opportunity." The ack-flooding variant additionally gossips
//! delivery acknowledgments and purges acknowledged packets — the first
//! component in the Fig. 14 decomposition of RAPID's gains.
//!
//! Randomness discipline: every contact draws from its own RNG substream,
//! derived from `(seed, contact sequence number)` rather than one shared
//! protocol stream. Statistically nothing changes (each shuffle still sees
//! an independent uniform stream), but contact decisions become a pure
//! function of the contact itself — which is what lets Random declare
//! [`ContactConcurrency::Stateless`] and run under both the engine's
//! intra-run parallel batch layer and the sharded runtime with
//! byte-identical results. Creation-time `make_room` follows the same
//! discipline: a per-call substream derived from the incoming packet id,
//! so the draw is a pure function of the eviction site rather than of
//! how many evictions this *instance* happened to serve before.

use crate::common::{deliver_destined, evict_until, replication_candidates};
use dtn_sim::{
    AckTable, ContactConcurrency, ContactDriver, ContactPool, NodeBuffer, NodeId, Packet, PacketId,
    PacketStore, Routing, SimConfig, SlicePartition, Time, TransferOutcome,
};
use dtn_stats::SeedStream;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Bytes charged per flooded acknowledgment (kept equal to RAPID's).
const ACK_BYTES: u64 = 4;

/// The Random baseline.
pub struct Random {
    with_acks: bool,
    /// Factory for the per-eviction `make_room` substreams.
    makeroom: SeedStream,
    acks: AckTable,
    /// Factory for the per-contact substreams.
    contacts: SeedStream,
}

impl Random {
    /// Plain random replication.
    pub fn new() -> Self {
        Self {
            with_acks: false,
            makeroom: SeedStream::new(0).derive("random-makeroom"),
            acks: AckTable::new(0),
            contacts: SeedStream::new(0).derive("random-contact"),
        }
    }

    /// Random replication plus flooded delivery acknowledgments.
    pub fn with_acks() -> Self {
        Self {
            with_acks: true,
            ..Self::new()
        }
    }

    /// Delivery plus randomized replication for one contact, drawing from
    /// the contact's own substream. Free of `self`: the batch path runs
    /// this concurrently for node-disjoint contacts.
    fn contact_core(contacts: SeedStream, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        for x in [a, b] {
            let _ = deliver_destined(driver, x);
        }
        Self::replicate_randomly(contacts, driver);
    }

    /// The randomized replication half of a contact.
    fn replicate_randomly(contacts: SeedStream, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();
        // The substream is only materialized when a draw actually happens
        // (shuffles of 0/1 elements are no-ops) — most sparse-fleet
        // contacts never pay the stream setup.
        let mut rng = LazyContactRng {
            contacts,
            seq: driver.contact_seq(),
            rng: None,
        };
        for x in [a, b] {
            let mut candidates = replication_candidates(driver, x);
            if candidates.len() > 1 {
                candidates.shuffle(rng.get());
            }
            for id in candidates {
                loop {
                    match driver.try_transfer(x, id) {
                        TransferOutcome::NeedsSpace(needed) => {
                            // Random eviction at the receiver.
                            let y = driver.peer_of(x);
                            let mut pool = driver.buffer(y).ids();
                            if pool.len() > 1 {
                                pool.shuffle(rng.get());
                            }
                            if !evict_until(driver, y, needed, &mut pool) {
                                break;
                            }
                        }
                        TransferOutcome::NoBandwidth => return,
                        _ => break,
                    }
                }
            }
        }
    }
}

/// A per-contact RNG substream, initialized on first draw.
struct LazyContactRng {
    contacts: SeedStream,
    seq: u64,
    rng: Option<StdRng>,
}

impl LazyContactRng {
    fn get(&mut self) -> &mut StdRng {
        let (contacts, seq) = (self.contacts, self.seq);
        self.rng
            .get_or_insert_with(|| contacts.rng_indexed("seq", seq))
    }
}

impl Default for Random {
    fn default() -> Self {
        Self::new()
    }
}

impl Routing for Random {
    fn name(&self) -> String {
        if self.with_acks {
            "Random+acks".into()
        } else {
            "Random".into()
        }
    }

    fn on_init(&mut self, config: &SimConfig) {
        self.makeroom = SeedStream::new(config.seed).derive("random-makeroom");
        self.acks = AckTable::new(config.nodes);
        self.contacts = SeedStream::new(config.seed).derive("random-contact");
    }

    fn make_room(
        &mut self,
        _node: NodeId,
        incoming: &Packet,
        needed: u64,
        buffer: &NodeBuffer,
        _packets: &PacketStore,
        _now: Time,
    ) -> Vec<PacketId> {
        // Random deletion (§6.3.2: "Spray and Wait and Random deletes
        // packets randomly"), drawn from a substream of the incoming
        // packet — each creation happens exactly once, so the draw is
        // identical no matter which instance (shard) serves it.
        let mut rng: StdRng = self
            .makeroom
            .rng_indexed("packet", u64::from(incoming.id.0));
        let mut ids = buffer.ids();
        ids.shuffle(&mut rng);
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for id in ids {
            if freed >= needed {
                break;
            }
            freed += buffer.meta(id).expect("id from buffer").size_bytes;
            victims.push(id);
        }
        if freed >= needed {
            victims
        } else {
            Vec::new()
        }
    }

    fn on_contact(&mut self, driver: &mut ContactDriver<'_>) {
        let (a, b) = driver.endpoints();

        if self.with_acks {
            let (to_a, to_b) = self.acks.exchange(a, b);
            driver.charge_metadata(a, to_b as u64 * ACK_BYTES);
            driver.charge_metadata(b, to_a as u64 * ACK_BYTES);
            for x in [a, b] {
                for id in driver.buffer(x).ids() {
                    if self.acks.knows(x, id) {
                        driver.evict(x, id);
                    }
                }
            }
            for x in [a, b] {
                for id in deliver_destined(driver, x) {
                    self.acks.learn(x, id);
                    self.acks.learn(driver.peer_of(x), id);
                }
            }
            // Delivery already ran; replication only below.
            Self::replicate_randomly(self.contacts, driver);
        } else {
            Self::contact_core(self.contacts, driver);
        }
    }

    fn contact_concurrency(&self) -> ContactConcurrency {
        // The ack table rows are per-node, but `exchange` walks both rows
        // through one `&mut self` path; keep the ack variant serial. The
        // plain variant keeps no evolving state at all — contact and
        // eviction draws are derived substreams — so identically-built
        // instances are interchangeable (the sharded runtime's contract).
        if self.with_acks {
            ContactConcurrency::Serial
        } else {
            ContactConcurrency::Stateless
        }
    }

    fn on_contact_batch(&mut self, batch: &mut [ContactDriver<'_>], pool: &ContactPool) {
        debug_assert!(!self.with_acks, "ack variant declared Serial");
        let contacts = self.contacts;
        let drivers = SlicePartition::new(batch);
        pool.run(drivers.len(), &|_worker, i| {
            // SAFETY: each batch index is claimed by exactly one worker
            // (ContactPool::run) and drivers address disjoint world slices
            // (the engine's node-disjoint batch contract).
            let driver = unsafe { drivers.get_mut(i) };
            Self::contact_core(contacts, driver);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::workload::{PacketSpec, Workload};
    use dtn_sim::{Contact, Schedule, Simulation};

    fn spec(t: u64, src: u32, dst: u32) -> PacketSpec {
        PacketSpec {
            time: Time::from_secs(t),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: 1024,
        }
    }

    fn contact(t: u64, a: u32, b: u32, bytes: u64) -> Contact {
        Contact::new(Time::from_secs(t), NodeId(a), NodeId(b), bytes)
    }

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            horizon: Time::from_secs(1000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn delivers_directly_and_replicates() {
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![contact(10, 0, 1, 1 << 20), contact(20, 1, 2, 1 << 20)]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut Random::new());
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.metadata_bytes, 0, "plain Random has no control channel");
    }

    #[test]
    fn acks_variant_purges_and_charges() {
        let sim = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(10, 0, 1, 1 << 20), // replicate to 1
                contact(20, 0, 2, 1 << 20), // deliver directly
                contact(30, 0, 1, 1 << 20), // ack to 1, purge
                contact(40, 1, 2, 1 << 20), // 1 must not resend
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r = sim.run(&mut Random::with_acks());
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.data_bytes, 2 * 1024, "no duplicate delivery");
        assert!(r.metadata_bytes > 0, "acks must be charged");

        // Without acks the replica at 1 re-delivers: more data bytes.
        let sim2 = Simulation::new(
            cfg(3),
            Schedule::new(vec![
                contact(10, 0, 1, 1 << 20),
                contact(20, 0, 2, 1 << 20),
                contact(30, 0, 1, 1 << 20),
                contact(40, 1, 2, 1 << 20),
            ]),
            Workload::new(vec![spec(0, 0, 2)]),
        );
        let r2 = sim2.run(&mut Random::new());
        // Without acks: the replica at 1 is replicated back to 0 at t=30
        // and re-delivered at t=40 — two wasted transmissions.
        assert_eq!(r2.data_bytes, 4 * 1024, "duplicates waste bandwidth");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            Simulation::new(
                cfg(4),
                Schedule::new(vec![
                    contact(5, 0, 1, 2048),
                    contact(9, 1, 2, 2048),
                    contact(12, 2, 3, 2048),
                ]),
                Workload::new(vec![spec(0, 0, 3), spec(1, 0, 2), spec(2, 1, 3)]),
            )
        };
        let r1 = build().run(&mut Random::new());
        let r2 = build().run(&mut Random::new());
        assert_eq!(r1, r2);
    }

    #[test]
    fn random_eviction_respects_capacity() {
        let c = SimConfig {
            buffer_capacity: 2048,
            ..cfg(3)
        };
        let sim = Simulation::new(
            c,
            Schedule::new(vec![contact(10, 0, 1, 1 << 20)]),
            Workload::new(vec![
                spec(0, 0, 2),
                spec(1, 0, 2),
                spec(2, 0, 2),
                spec(3, 1, 2),
                spec(4, 1, 2),
            ]),
        );
        let r = sim.run(&mut Random::new());
        // Node 1's buffer (2 slots) can never exceed capacity — the engine
        // enforces it; this just confirms the protocol makes progress.
        assert!(r.replications >= 1);
    }
}
