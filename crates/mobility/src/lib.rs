//! Mobility models for the RAPID DTN reproduction.
//!
//! Three contact-generation substrates, matching §6 of the paper:
//!
//! * [`exponential::UniformExponential`] — every pair of nodes meets with
//!   i.i.d. exponential inter-meeting times (§4.1.1's analytical model and
//!   the §6.3.3 synthetic experiments).
//! * [`powerlaw::PowerLaw`] — exponential pairwise meetings whose means are
//!   skewed by node popularity (§6.3: "two nodes meet with an exponential
//!   inter-meeting time, but the mean ... is determined by the popularity of
//!   the nodes").
//! * [`dieselnet::DieselNet`] — the synthetic substitute for the DieselNet
//!   vehicular testbed traces (§5): 40 buses on overlapping routes, a
//!   rotating subset scheduled each day, 19-hour days, heavy-tailed
//!   per-meeting transfer opportunities, and bus pairs that never meet
//!   directly (which §4.1.2's h-hop meeting-time estimation exists for).
//!
//! All generators are deterministic functions of their seed.
//!
//! Each substrate also exists in *streaming* form (the [`stream`] module's
//! [`stream::PairPoissonStream`], [`dieselnet::DayWindowStream`], and the
//! [`scale`] module's sparse [`scale::ScaleFleet`]): contact windows pulled
//! lazily in start order from per-run RNG substreams, so the engine never
//! materializes a schedule. The materialized generators are kept bit-exact
//! for the seed figures.

pub mod dieselnet;
pub mod exponential;
pub mod powerlaw;
pub mod scale;
pub mod stream;

pub use dieselnet::{DayTrace, DayWindowStream, DieselNet, DieselNetConfig};
pub use exponential::UniformExponential;
pub use powerlaw::PowerLaw;
pub use scale::{
    RegionalContactStream, RegionalFleet, RegionalPacketStream, ScaleContactStream, ScaleFleet,
    ScalePacketStream,
};
pub use stream::PairPoissonStream;
