//! Scale-family scenario sources: O(1)-state generators for fleets far
//! beyond anything pairwise enumeration can hold.
//!
//! The pairwise models keep one RNG per node pair — fine for 20 buses,
//! hopeless for 100 000 nodes (5 × 10⁹ pairs). This module models the
//! fleet the other way around, as contact-plan *compression*: meetings
//! form one global Poisson process (rate = expected contacts / horizon),
//! and each meeting samples a uniformly random unordered pair. Per-pair
//! behaviour is still exponential inter-meeting (the thinning of a Poisson
//! process is Poisson), but generator state is a single clock and RNG —
//! windows stream in strictly nondecreasing order with O(1) memory, so the
//! full schedule never exists anywhere.
//!
//! A configurable **hub set** (nodes `0..hubs`) models the
//! millions-of-users-few-gateways shape of a production DTN: meetings are
//! biased toward hubs with probability `hub_bias`, and the packet source
//! addresses all traffic *to* hubs — so deliveries actually happen at
//! 100 000 nodes instead of replicas diffusing forever. `hubs = 0` turns
//! the bias off (uniform pairs everywhere).
//!
//! The packet source is the same shape as the contact source: a global
//! Poisson creation clock with random (src, dst) draws.
//!
//! Both sources are deterministic in `(seed, run)` via the same labelled
//! substream scheme the rest of the workspace uses.

use dtn_sim::workload::PacketSpec;
use dtn_sim::{CompiledPlan, ContactWindow, NodeId, PlanAtom, Time, TimeDelta};
use dtn_stats::sample::Exponential;
use dtn_stats::SeedStream;
use rand::rngs::StdRng;
use rand::Rng;

/// A fleet whose meetings form one global Poisson process over uniformly
/// random pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFleet {
    /// Number of nodes.
    pub nodes: usize,
    /// Expected number of contact windows over the horizon.
    pub contacts: u64,
    /// Transfer opportunity per meeting, bytes.
    pub opportunity_bytes: u64,
    /// Fixed contact-window duration (`ZERO` = instantaneous lumps).
    pub contact_duration: TimeDelta,
    /// End of the scenario; windows are clamped here.
    pub horizon: Time,
    /// Hub nodes (`0..hubs`): popular gateways meetings gravitate toward
    /// and packets are addressed to. `0` disables the hub structure.
    pub hubs: usize,
    /// Probability a meeting's second endpoint is drawn from the hub set
    /// (only meaningful when `hubs > 0`).
    pub hub_bias: f64,
}

impl ScaleFleet {
    /// Streams the fleet's contact windows for one run.
    pub fn contact_stream(&self, seed: u64, run: u64) -> ScaleContactStream {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(self.contacts > 0, "need a positive expected contact count");
        assert!(self.horizon > Time::ZERO, "need a positive horizon");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        assert!(self.hubs != 1, "need at least two hubs (or none)");
        assert!(
            (0.0..=1.0).contains(&self.hub_bias),
            "hub bias is a probability"
        );
        let rate = self.contacts as f64 / self.horizon.as_secs_f64();
        ScaleContactStream {
            fleet: *self,
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("scale-contacts")
                .rng_indexed("run", run),
        }
    }

    /// Compiles the fleet as `routes` recurring *periodic routes* — the
    /// generator-atom counterpart of [`ScaleFleet::contact_stream`] for
    /// scheduled (bus/satellite-pass-like) fleets. Each route is one
    /// [`dtn_sim::PlanAtom::Periodic`]: a pair drawn with the same hub
    /// bias as the Poisson stream, a common period sized so the total
    /// window count matches `self.contacts`, and a per-route phase
    /// uniform in the period. The whole plan costs O(routes) memory no
    /// matter how many windows it expands to — `contacts / routes`
    /// repeats per atom ride in a constant-size struct.
    ///
    /// Deterministic in `(seed, run)` via its own labelled substream.
    pub fn periodic_plan(&self, routes: usize, seed: u64, run: u64) -> CompiledPlan {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(routes > 0, "need a positive route count");
        assert!(self.contacts > 0, "need a positive expected contact count");
        assert!(self.horizon > Time::ZERO, "need a positive horizon");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        assert!(self.hubs != 1, "need at least two hubs (or none)");
        assert!(
            (0.0..=1.0).contains(&self.hub_bias),
            "hub bias is a probability"
        );
        let mut rng = SeedStream::new(seed)
            .derive("scale-routes")
            .rng_indexed("run", run);
        // Start-to-start gap so that `routes` trains together expand to
        // ~`contacts` windows across the horizon.
        let period_us = (self.horizon.0 * routes as u64 / self.contacts).max(1);
        // Last start that keeps the whole window inside the horizon.
        let last_start = self
            .horizon
            .0
            .saturating_sub(self.contact_duration.0)
            .saturating_sub(1);
        let rate = if self.contact_duration == TimeDelta::ZERO {
            0
        } else {
            (self.opportunity_bytes as f64 / self.contact_duration.as_secs_f64())
                .floor()
                .max(1.0) as u64
        };
        let mut atoms = Vec::with_capacity(routes);
        for _ in 0..routes {
            let (a, b) = if self.hubs > 0 && rng.gen::<f64>() < self.hub_bias {
                let a = rng.gen_range(0..self.nodes);
                let b = distinct_from(self.hubs, a, &mut rng);
                (NodeId(a as u32), NodeId(b as u32))
            } else {
                random_pair(self.nodes, &mut rng)
            };
            let phase = rng.gen_range(0..period_us).min(last_start);
            let template = if self.contact_duration == TimeDelta::ZERO {
                ContactWindow::instant(Time(phase), a, b, self.opportunity_bytes)
            } else {
                ContactWindow::new(
                    Time(phase),
                    Time(phase + self.contact_duration.0),
                    a,
                    b,
                    rate,
                )
            };
            let repeats = (last_start - phase) / period_us + 1;
            atoms.push(if repeats >= 2 {
                PlanAtom::Periodic {
                    template,
                    period: TimeDelta(period_us),
                    repeats: u32::try_from(repeats).expect("repeats fit u32"),
                }
            } else {
                PlanAtom::Literal(template)
            });
        }
        CompiledPlan::new(atoms)
    }

    /// Streams a Poisson packet workload for one run: `packets` expected
    /// creations over the horizon, uniformly random distinct `(src, dst)`.
    pub fn packet_stream(
        &self,
        packets: u64,
        size_bytes: u64,
        seed: u64,
        run: u64,
    ) -> ScalePacketStream {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(packets > 0, "need a positive expected packet count");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        let rate = packets as f64 / self.horizon.as_secs_f64();
        ScalePacketStream {
            nodes: self.nodes,
            hubs: self.hubs,
            size_bytes,
            horizon: self.horizon,
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("scale-packets")
                .rng_indexed("run", run),
        }
    }
}

/// Draws a random node distinct from `not`, from `0..pool`.
fn distinct_from(pool: usize, not: usize, rng: &mut StdRng) -> usize {
    loop {
        let b = rng.gen_range(0..pool);
        if b != not {
            return b;
        }
    }
}

/// Draws a uniformly random unordered pair of distinct nodes.
fn random_pair(nodes: usize, rng: &mut StdRng) -> (NodeId, NodeId) {
    let a = rng.gen_range(0..nodes);
    let b = distinct_from(nodes, a, rng);
    (NodeId(a as u32), NodeId(b as u32))
}

/// The global-Poisson contact stream; O(1) state.
#[derive(Debug)]
pub struct ScaleContactStream {
    fleet: ScaleFleet,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for ScaleContactStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.fleet.horizon.as_secs_f64() {
            return None;
        }
        let (a, b) = if self.fleet.hubs > 0 && self.rng.gen::<f64>() < self.fleet.hub_bias {
            // A gateway meeting: one endpoint from the hub set.
            let a = self.rng.gen_range(0..self.fleet.nodes);
            let b = distinct_from(self.fleet.hubs, a, &mut self.rng);
            (NodeId(a as u32), NodeId(b as u32))
        } else {
            random_pair(self.fleet.nodes, &mut self.rng)
        };
        let start = Time::from_secs_f64(self.t);
        Some(if self.fleet.contact_duration == TimeDelta::ZERO {
            ContactWindow::instant(start, a, b, self.fleet.opportunity_bytes)
        } else {
            let rate = (self.fleet.opportunity_bytes as f64
                / self.fleet.contact_duration.as_secs_f64())
            .floor()
            .max(1.0) as u64;
            let end = (start + self.fleet.contact_duration)
                .min(self.fleet.horizon)
                .max(start);
            ContactWindow::new(start, end, a, b, rate)
        })
    }
}

/// The global-Poisson packet stream; O(1) state.
#[derive(Debug)]
pub struct ScalePacketStream {
    nodes: usize,
    hubs: usize,
    size_bytes: u64,
    horizon: Time,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for ScalePacketStream {
    type Item = PacketSpec;

    fn next(&mut self) -> Option<PacketSpec> {
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.horizon.as_secs_f64() {
            return None;
        }
        let (src, dst) = if self.hubs > 0 {
            // User-to-gateway traffic: every packet is addressed to a hub.
            let dst = self.rng.gen_range(0..self.hubs);
            let src = distinct_from(self.nodes, dst, &mut self.rng);
            (NodeId(src as u32), NodeId(dst as u32))
        } else {
            random_pair(self.nodes, &mut self.rng)
        };
        Some(PacketSpec {
            time: Time::from_secs_f64(self.t),
            src,
            dst,
            size_bytes: self.size_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> ScaleFleet {
        ScaleFleet {
            nodes: 50_000,
            contacts: 20_000,
            opportunity_bytes: 64 * 1024,
            contact_duration: TimeDelta::ZERO,
            horizon: Time::from_secs(3600),
            hubs: 0,
            hub_bias: 0.0,
        }
    }

    #[test]
    fn contact_count_tracks_expectation() {
        let count = fleet().contact_stream(1, 0).count() as f64;
        assert!(
            (count - 20_000.0).abs() < 20_000.0 * 0.05,
            "expected ~20000, got {count}"
        );
    }

    #[test]
    fn contacts_are_ordered_valid_and_deterministic() {
        let f = fleet();
        let a: Vec<_> = f.contact_stream(1, 0).take(5000).collect();
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(a.iter().all(|w| w.a != w.b
            && w.a.index() < f.nodes
            && w.b.index() < f.nodes
            && w.end <= f.horizon));
        let b: Vec<_> = f.contact_stream(1, 0).take(5000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = f.contact_stream(1, 1).take(5000).collect();
        assert_ne!(a, c, "runs draw independent substreams");
    }

    #[test]
    fn durative_scale_windows_clamp() {
        let f = ScaleFleet {
            contact_duration: TimeDelta::from_secs(120),
            ..fleet()
        };
        let windows: Vec<_> = f.contact_stream(2, 0).take(2000).collect();
        assert!(windows.iter().all(|w| w.end <= f.horizon));
        assert!(windows.iter().any(|w| !w.is_instantaneous()));
    }

    #[test]
    fn packets_are_ordered_valid_and_deterministic() {
        let f = fleet();
        let a: Vec<_> = f.packet_stream(2000, 1024, 9, 0).collect();
        assert!((a.len() as f64 - 2000.0).abs() < 2000.0 * 0.15);
        assert!(a.windows(2).all(|p| p[0].time <= p[1].time));
        assert!(a.iter().all(|p| p.src != p.dst && p.time < f.horizon));
        let b: Vec<_> = f.packet_stream(2000, 1024, 9, 0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_plan_hits_the_contact_budget_in_tiny_memory() {
        let f = fleet();
        let plan = f.periodic_plan(100, 1, 0);
        assert_eq!(plan.atom_count(), 100);
        let windows = plan.window_count() as f64;
        assert!(
            (windows - f.contacts as f64).abs() < f.contacts as f64 * 0.05,
            "expected ~{}, got {windows}",
            f.contacts
        );
        // ≥10× plan-representation reduction vs materializing.
        assert!(plan.materialized_bytes() as usize >= 10 * plan.in_memory_bytes());
        let expanded: Vec<_> = std::sync::Arc::new(plan.clone()).stream().collect();
        assert_eq!(expanded.len() as u64, plan.window_count());
        assert!(expanded.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(expanded
            .iter()
            .all(|w| w.a != w.b && w.a.index() < f.nodes && w.end < f.horizon));
        assert_eq!(
            plan,
            f.periodic_plan(100, 1, 0),
            "deterministic in (seed, run)"
        );
        assert_ne!(plan, f.periodic_plan(100, 1, 1), "runs differ");
    }

    #[test]
    fn periodic_plan_respects_hub_bias_and_duration() {
        let f = ScaleFleet {
            hubs: 16,
            hub_bias: 0.5,
            contact_duration: TimeDelta::from_secs(60),
            ..fleet()
        };
        let plan = f.periodic_plan(400, 9, 0);
        let hub_routes = plan
            .atoms()
            .iter()
            .filter(|a| {
                let t = a.template();
                t.a.index() < 16 || t.b.index() < 16
            })
            .count() as f64;
        let share = hub_routes / plan.atom_count() as f64;
        assert!(
            (0.35..0.65).contains(&share),
            "hub route share {share} far from bias"
        );
        let expanded: Vec<_> = std::sync::Arc::new(plan).stream().collect();
        assert!(expanded.iter().all(|w| w.end <= f.horizon));
        assert!(expanded.iter().any(|w| !w.is_instantaneous()));
    }

    #[test]
    fn hub_structure_biases_meetings_and_addresses_traffic() {
        let f = ScaleFleet {
            hubs: 16,
            hub_bias: 0.5,
            ..fleet()
        };
        let windows: Vec<_> = f.contact_stream(4, 0).take(4000).collect();
        let hub_meetings = windows
            .iter()
            .filter(|w| w.a.index() < 16 || w.b.index() < 16)
            .count() as f64;
        let share = hub_meetings / windows.len() as f64;
        assert!(
            (0.4..0.6).contains(&share),
            "hub meeting share {share} far from bias"
        );
        assert!(windows.iter().all(|w| w.a != w.b));
        let packets: Vec<_> = f.packet_stream(1000, 1024, 4, 0).collect();
        assert!(packets.iter().all(|p| p.dst.index() < 16 && p.src != p.dst));
    }
}
