//! Scale-family scenario sources: O(1)-state generators for fleets far
//! beyond anything pairwise enumeration can hold.
//!
//! The pairwise models keep one RNG per node pair — fine for 20 buses,
//! hopeless for 100 000 nodes (5 × 10⁹ pairs). This module models the
//! fleet the other way around, as contact-plan *compression*: meetings
//! form one global Poisson process (rate = expected contacts / horizon),
//! and each meeting samples a uniformly random unordered pair. Per-pair
//! behaviour is still exponential inter-meeting (the thinning of a Poisson
//! process is Poisson), but generator state is a single clock and RNG —
//! windows stream in strictly nondecreasing order with O(1) memory, so the
//! full schedule never exists anywhere.
//!
//! A configurable **hub set** (nodes `0..hubs`) models the
//! millions-of-users-few-gateways shape of a production DTN: meetings are
//! biased toward hubs with probability `hub_bias`, and the packet source
//! addresses all traffic *to* hubs — so deliveries actually happen at
//! 100 000 nodes instead of replicas diffusing forever. `hubs = 0` turns
//! the bias off (uniform pairs everywhere).
//!
//! The packet source is the same shape as the contact source: a global
//! Poisson creation clock with random (src, dst) draws.
//!
//! Both sources are deterministic in `(seed, run)` via the same labelled
//! substream scheme the rest of the workspace uses.

use dtn_sim::workload::PacketSpec;
use dtn_sim::{CompiledPlan, ContactWindow, NodeId, Partition, PlanAtom, Time, TimeDelta};
use dtn_stats::sample::Exponential;
use dtn_stats::SeedStream;
use rand::rngs::StdRng;
use rand::Rng;

/// A fleet whose meetings form one global Poisson process over uniformly
/// random pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFleet {
    /// Number of nodes.
    pub nodes: usize,
    /// Expected number of contact windows over the horizon.
    pub contacts: u64,
    /// Transfer opportunity per meeting, bytes.
    pub opportunity_bytes: u64,
    /// Fixed contact-window duration (`ZERO` = instantaneous lumps).
    pub contact_duration: TimeDelta,
    /// End of the scenario; windows are clamped here.
    pub horizon: Time,
    /// Hub nodes (`0..hubs`): popular gateways meetings gravitate toward
    /// and packets are addressed to. `0` disables the hub structure.
    pub hubs: usize,
    /// Probability a meeting's second endpoint is drawn from the hub set
    /// (only meaningful when `hubs > 0`).
    pub hub_bias: f64,
}

impl ScaleFleet {
    /// Streams the fleet's contact windows for one run.
    pub fn contact_stream(&self, seed: u64, run: u64) -> ScaleContactStream {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(self.contacts > 0, "need a positive expected contact count");
        assert!(self.horizon > Time::ZERO, "need a positive horizon");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        assert!(self.hubs != 1, "need at least two hubs (or none)");
        assert!(
            (0.0..=1.0).contains(&self.hub_bias),
            "hub bias is a probability"
        );
        let rate = self.contacts as f64 / self.horizon.as_secs_f64();
        ScaleContactStream {
            fleet: *self,
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("scale-contacts")
                .rng_indexed("run", run),
        }
    }

    /// Compiles the fleet as `routes` recurring *periodic routes* — the
    /// generator-atom counterpart of [`ScaleFleet::contact_stream`] for
    /// scheduled (bus/satellite-pass-like) fleets. Each route is one
    /// [`dtn_sim::PlanAtom::Periodic`]: a pair drawn with the same hub
    /// bias as the Poisson stream, a common period sized so the total
    /// window count matches `self.contacts`, and a per-route phase
    /// uniform in the period. The whole plan costs O(routes) memory no
    /// matter how many windows it expands to — `contacts / routes`
    /// repeats per atom ride in a constant-size struct.
    ///
    /// Deterministic in `(seed, run)` via its own labelled substream.
    pub fn periodic_plan(&self, routes: usize, seed: u64, run: u64) -> CompiledPlan {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(routes > 0, "need a positive route count");
        assert!(self.contacts > 0, "need a positive expected contact count");
        assert!(self.horizon > Time::ZERO, "need a positive horizon");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        assert!(self.hubs != 1, "need at least two hubs (or none)");
        assert!(
            (0.0..=1.0).contains(&self.hub_bias),
            "hub bias is a probability"
        );
        let mut rng = SeedStream::new(seed)
            .derive("scale-routes")
            .rng_indexed("run", run);
        // Start-to-start gap so that `routes` trains together expand to
        // ~`contacts` windows across the horizon.
        let period_us = (self.horizon.0 * routes as u64 / self.contacts).max(1);
        // Last start that keeps the whole window inside the horizon.
        let last_start = self
            .horizon
            .0
            .saturating_sub(self.contact_duration.0)
            .saturating_sub(1);
        let rate = if self.contact_duration == TimeDelta::ZERO {
            0
        } else {
            (self.opportunity_bytes as f64 / self.contact_duration.as_secs_f64())
                .floor()
                .max(1.0) as u64
        };
        let mut atoms = Vec::with_capacity(routes);
        for _ in 0..routes {
            let (a, b) = if self.hubs > 0 && rng.gen::<f64>() < self.hub_bias {
                let a = rng.gen_range(0..self.nodes);
                let b = distinct_from(self.hubs, a, &mut rng);
                (NodeId(a as u32), NodeId(b as u32))
            } else {
                random_pair(self.nodes, &mut rng)
            };
            let phase = rng.gen_range(0..period_us).min(last_start);
            let template = if self.contact_duration == TimeDelta::ZERO {
                ContactWindow::instant(Time(phase), a, b, self.opportunity_bytes)
            } else {
                ContactWindow::new(
                    Time(phase),
                    Time(phase + self.contact_duration.0),
                    a,
                    b,
                    rate,
                )
            };
            let repeats = (last_start - phase) / period_us + 1;
            atoms.push(if repeats >= 2 {
                PlanAtom::Periodic {
                    template,
                    period: TimeDelta(period_us),
                    repeats: u32::try_from(repeats).expect("repeats fit u32"),
                }
            } else {
                PlanAtom::Literal(template)
            });
        }
        CompiledPlan::new(atoms)
    }

    /// Streams a Poisson packet workload for one run: `packets` expected
    /// creations over the horizon, uniformly random distinct `(src, dst)`.
    pub fn packet_stream(
        &self,
        packets: u64,
        size_bytes: u64,
        seed: u64,
        run: u64,
    ) -> ScalePacketStream {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(packets > 0, "need a positive expected packet count");
        assert!(self.hubs <= self.nodes, "hub set cannot exceed the fleet");
        let rate = packets as f64 / self.horizon.as_secs_f64();
        ScalePacketStream {
            nodes: self.nodes,
            hubs: self.hubs,
            size_bytes,
            horizon: self.horizon,
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("scale-packets")
                .rng_indexed("run", run),
        }
    }
}

/// A region-structured fleet: the partition-aware emission the sharded
/// runtime ([`dtn_sim::shard`]) feeds on.
///
/// The node space is cut into `regions` contiguous blocks; the first
/// nodes of each block are its *gateways* (the fleet-wide hub budget
/// `fleet.hubs` spread across regions, at least one each). Meetings keep
/// the global-Poisson clock of [`ScaleFleet`], but the pair draw is
/// region-aware:
///
/// * with probability `locality` the meeting is **intra-region** — a
///   uniformly random pair inside one region, biased toward the region's
///   own gateways by `fleet.hub_bias`;
/// * otherwise it is a **gateway meeting** — one gateway from each of
///   two distinct regions (the hub-to-hub backbone).
///
/// Packets are user-to-gateway traffic *within* a region, so routing is
/// region-local except for what crosses the backbone. A [`Partition`]
/// from [`RegionalFleet::partition`] puts region boundaries on shard
/// boundaries, making every intra-region contact shard-local: the only
/// cross-shard (barrier) events are gateway meetings between regions of
/// different shards — a `1 - locality` sliver of the plan, which is what
/// lets shards free-run between sync horizons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionalFleet {
    /// The underlying fleet shape (nodes, contact budget, opportunity,
    /// horizon; `hubs` is the fleet-wide gateway budget and `hub_bias`
    /// the intra-region gateway attraction).
    pub fleet: ScaleFleet,
    /// Number of contiguous regions.
    pub regions: usize,
    /// Probability a meeting stays inside one region.
    pub locality: f64,
}

impl RegionalFleet {
    /// Validates the region structure (callers hit this before streaming).
    fn check(&self) {
        assert!(self.regions >= 2, "need at least two regions");
        assert!(
            self.fleet.nodes / self.regions >= 2,
            "every region needs at least two nodes"
        );
        assert!(
            (0.0..=1.0).contains(&self.locality),
            "locality is a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.fleet.hub_bias),
            "hub bias is a probability"
        );
    }

    /// Gateways per region: the fleet-wide hub budget spread evenly, at
    /// least one per region (the backbone needs an endpoint everywhere).
    pub fn gateways_per_region(&self) -> usize {
        (self.fleet.hubs / self.regions).max(1)
    }

    /// The even region layout over the node space.
    fn region_layout(&self) -> Partition {
        Partition::even(self.fleet.nodes, self.regions)
    }

    /// A shard partition aligned to region boundaries: shard `s` owns a
    /// contiguous run of whole regions, so every intra-region contact is
    /// shard-local by construction. `shards` must not exceed `regions`.
    pub fn partition(&self, shards: usize) -> Partition {
        self.check();
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= self.regions,
            "cannot split {} regions across {shards} shards",
            self.regions
        );
        let layout = self.region_layout();
        let mut bounds = Vec::with_capacity(shards + 1);
        for s in 0..shards {
            bounds.push(layout.range(s * self.regions / shards).start as u32);
        }
        bounds.push(self.fleet.nodes as u32);
        Partition::from_bounds(bounds)
    }

    /// Streams the region-structured contact plan for one run
    /// (deterministic in `(seed, run)` via its own labelled substream).
    pub fn contact_stream(&self, seed: u64, run: u64) -> RegionalContactStream {
        self.check();
        assert!(self.fleet.contacts > 0, "need a positive contact count");
        assert!(self.fleet.horizon > Time::ZERO, "need a positive horizon");
        let rate = self.fleet.contacts as f64 / self.fleet.horizon.as_secs_f64();
        RegionalContactStream {
            fleet: *self,
            layout: self.region_layout(),
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("regional-contacts")
                .rng_indexed("run", run),
        }
    }

    /// Streams region-local user-to-gateway packet traffic, the regional
    /// twin of [`ScaleFleet::packet_stream`].
    pub fn packet_stream(
        &self,
        packets: u64,
        size_bytes: u64,
        seed: u64,
        run: u64,
    ) -> RegionalPacketStream {
        self.check();
        assert!(packets > 0, "need a positive expected packet count");
        let rate = packets as f64 / self.fleet.horizon.as_secs_f64();
        RegionalPacketStream {
            fleet: *self,
            layout: self.region_layout(),
            size_bytes,
            gap: Exponential::new(rate),
            t: 0.0,
            rng: SeedStream::new(seed)
                .derive("regional-packets")
                .rng_indexed("run", run),
        }
    }

    /// Compiles the regional fleet as recurring periodic routes — the
    /// [`CompiledPlan`] emission whose
    /// [`first_cross_shard_start`](CompiledPlan::first_cross_shard_start)
    /// against [`RegionalFleet::partition`] is the sharded runtime's
    /// static sync horizon. A `locality` share of the routes is
    /// intra-region; the rest are gateway routes between distinct
    /// regions. Deterministic in `(seed, run)`.
    pub fn periodic_plan(&self, routes: usize, seed: u64, run: u64) -> CompiledPlan {
        self.check();
        assert!(routes > 0, "need a positive route count");
        assert!(self.fleet.contacts > 0, "need a positive contact count");
        assert!(self.fleet.horizon > Time::ZERO, "need a positive horizon");
        let layout = self.region_layout();
        let mut rng = SeedStream::new(seed)
            .derive("regional-routes")
            .rng_indexed("run", run);
        let period_us = (self.fleet.horizon.0 * routes as u64 / self.fleet.contacts).max(1);
        let last_start = self
            .fleet
            .horizon
            .0
            .saturating_sub(self.fleet.contact_duration.0)
            .saturating_sub(1);
        let rate = if self.fleet.contact_duration == TimeDelta::ZERO {
            0
        } else {
            (self.fleet.opportunity_bytes as f64 / self.fleet.contact_duration.as_secs_f64())
                .floor()
                .max(1.0) as u64
        };
        let mut atoms = Vec::with_capacity(routes);
        for _ in 0..routes {
            let (a, b) = self.draw_pair(&layout, &mut rng);
            let phase = rng.gen_range(0..period_us).min(last_start);
            let template = if self.fleet.contact_duration == TimeDelta::ZERO {
                ContactWindow::instant(Time(phase), a, b, self.fleet.opportunity_bytes)
            } else {
                ContactWindow::new(
                    Time(phase),
                    Time(phase + self.fleet.contact_duration.0),
                    a,
                    b,
                    rate,
                )
            };
            let repeats = (last_start - phase) / period_us + 1;
            atoms.push(if repeats >= 2 {
                PlanAtom::Periodic {
                    template,
                    period: TimeDelta(period_us),
                    repeats: u32::try_from(repeats).expect("repeats fit u32"),
                }
            } else {
                PlanAtom::Literal(template)
            });
        }
        CompiledPlan::new(atoms)
    }

    /// One region-aware pair draw (shared by the stream and the plan).
    fn draw_pair(&self, layout: &Partition, rng: &mut StdRng) -> (NodeId, NodeId) {
        let gws = self.gateways_per_region();
        if rng.gen::<f64>() < self.locality {
            // Intra-region: uniform pair inside one region, gateway-biased.
            let r = rng.gen_range(0..self.regions);
            let range = layout.range(r);
            let a = range.start + rng.gen_range(0..range.len());
            let local = a - range.start;
            // Bias toward the region's gateways, unless `a` is the sole
            // gateway (no distinct peer in that pool).
            let pool = gws.min(range.len());
            let b = if rng.gen::<f64>() < self.fleet.hub_bias && !(pool == 1 && local == 0) {
                range.start + distinct_from(pool, local, rng)
            } else {
                range.start + distinct_from(range.len(), local, rng)
            };
            (NodeId(a as u32), NodeId(b as u32))
        } else {
            // Backbone: one gateway from each of two distinct regions.
            let r1 = rng.gen_range(0..self.regions);
            let r2 = distinct_from(self.regions, r1, rng);
            let (g1, g2) = (layout.range(r1), layout.range(r2));
            let a = g1.start + rng.gen_range(0..gws.min(g1.len()));
            let b = g2.start + rng.gen_range(0..gws.min(g2.len()));
            (NodeId(a as u32), NodeId(b as u32))
        }
    }
}

/// The region-structured contact stream; O(1) state, nondecreasing
/// starts.
#[derive(Debug)]
pub struct RegionalContactStream {
    fleet: RegionalFleet,
    layout: Partition,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for RegionalContactStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        self.t += self.gap.sample(&mut self.rng);
        let f = &self.fleet.fleet;
        if self.t >= f.horizon.as_secs_f64() {
            return None;
        }
        let (a, b) = self.fleet.draw_pair(&self.layout, &mut self.rng);
        let start = Time::from_secs_f64(self.t);
        Some(if f.contact_duration == TimeDelta::ZERO {
            ContactWindow::instant(start, a, b, f.opportunity_bytes)
        } else {
            let rate = (f.opportunity_bytes as f64 / f.contact_duration.as_secs_f64())
                .floor()
                .max(1.0) as u64;
            let end = (start + f.contact_duration).min(f.horizon).max(start);
            ContactWindow::new(start, end, a, b, rate)
        })
    }
}

/// Region-local user-to-gateway packet traffic; O(1) state.
#[derive(Debug)]
pub struct RegionalPacketStream {
    fleet: RegionalFleet,
    layout: Partition,
    size_bytes: u64,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for RegionalPacketStream {
    type Item = PacketSpec;

    fn next(&mut self) -> Option<PacketSpec> {
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.fleet.fleet.horizon.as_secs_f64() {
            return None;
        }
        // Addressed to a gateway of the source's own region: deliveries
        // resolve locally, so shard-local routing does real work.
        let r = self.rng.gen_range(0..self.fleet.regions);
        let range = self.layout.range(r);
        let gws = self.fleet.gateways_per_region().min(range.len());
        let dst = range.start + self.rng.gen_range(0..gws);
        let src = range.start + distinct_from(range.len(), dst - range.start, &mut self.rng);
        Some(PacketSpec {
            time: Time::from_secs_f64(self.t),
            src: NodeId(src as u32),
            dst: NodeId(dst as u32),
            size_bytes: self.size_bytes,
        })
    }
}

/// Draws a random node distinct from `not`, from `0..pool`.
fn distinct_from(pool: usize, not: usize, rng: &mut StdRng) -> usize {
    loop {
        let b = rng.gen_range(0..pool);
        if b != not {
            return b;
        }
    }
}

/// Draws a uniformly random unordered pair of distinct nodes.
fn random_pair(nodes: usize, rng: &mut StdRng) -> (NodeId, NodeId) {
    let a = rng.gen_range(0..nodes);
    let b = distinct_from(nodes, a, rng);
    (NodeId(a as u32), NodeId(b as u32))
}

/// The global-Poisson contact stream; O(1) state.
#[derive(Debug)]
pub struct ScaleContactStream {
    fleet: ScaleFleet,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for ScaleContactStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.fleet.horizon.as_secs_f64() {
            return None;
        }
        let (a, b) = if self.fleet.hubs > 0 && self.rng.gen::<f64>() < self.fleet.hub_bias {
            // A gateway meeting: one endpoint from the hub set.
            let a = self.rng.gen_range(0..self.fleet.nodes);
            let b = distinct_from(self.fleet.hubs, a, &mut self.rng);
            (NodeId(a as u32), NodeId(b as u32))
        } else {
            random_pair(self.fleet.nodes, &mut self.rng)
        };
        let start = Time::from_secs_f64(self.t);
        Some(if self.fleet.contact_duration == TimeDelta::ZERO {
            ContactWindow::instant(start, a, b, self.fleet.opportunity_bytes)
        } else {
            let rate = (self.fleet.opportunity_bytes as f64
                / self.fleet.contact_duration.as_secs_f64())
            .floor()
            .max(1.0) as u64;
            let end = (start + self.fleet.contact_duration)
                .min(self.fleet.horizon)
                .max(start);
            ContactWindow::new(start, end, a, b, rate)
        })
    }
}

/// The global-Poisson packet stream; O(1) state.
#[derive(Debug)]
pub struct ScalePacketStream {
    nodes: usize,
    hubs: usize,
    size_bytes: u64,
    horizon: Time,
    gap: Exponential,
    t: f64,
    rng: StdRng,
}

impl Iterator for ScalePacketStream {
    type Item = PacketSpec;

    fn next(&mut self) -> Option<PacketSpec> {
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.horizon.as_secs_f64() {
            return None;
        }
        let (src, dst) = if self.hubs > 0 {
            // User-to-gateway traffic: every packet is addressed to a hub.
            let dst = self.rng.gen_range(0..self.hubs);
            let src = distinct_from(self.nodes, dst, &mut self.rng);
            (NodeId(src as u32), NodeId(dst as u32))
        } else {
            random_pair(self.nodes, &mut self.rng)
        };
        Some(PacketSpec {
            time: Time::from_secs_f64(self.t),
            src,
            dst,
            size_bytes: self.size_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> ScaleFleet {
        ScaleFleet {
            nodes: 50_000,
            contacts: 20_000,
            opportunity_bytes: 64 * 1024,
            contact_duration: TimeDelta::ZERO,
            horizon: Time::from_secs(3600),
            hubs: 0,
            hub_bias: 0.0,
        }
    }

    #[test]
    fn contact_count_tracks_expectation() {
        let count = fleet().contact_stream(1, 0).count() as f64;
        assert!(
            (count - 20_000.0).abs() < 20_000.0 * 0.05,
            "expected ~20000, got {count}"
        );
    }

    #[test]
    fn contacts_are_ordered_valid_and_deterministic() {
        let f = fleet();
        let a: Vec<_> = f.contact_stream(1, 0).take(5000).collect();
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(a.iter().all(|w| w.a != w.b
            && w.a.index() < f.nodes
            && w.b.index() < f.nodes
            && w.end <= f.horizon));
        let b: Vec<_> = f.contact_stream(1, 0).take(5000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = f.contact_stream(1, 1).take(5000).collect();
        assert_ne!(a, c, "runs draw independent substreams");
    }

    #[test]
    fn durative_scale_windows_clamp() {
        let f = ScaleFleet {
            contact_duration: TimeDelta::from_secs(120),
            ..fleet()
        };
        let windows: Vec<_> = f.contact_stream(2, 0).take(2000).collect();
        assert!(windows.iter().all(|w| w.end <= f.horizon));
        assert!(windows.iter().any(|w| !w.is_instantaneous()));
    }

    #[test]
    fn packets_are_ordered_valid_and_deterministic() {
        let f = fleet();
        let a: Vec<_> = f.packet_stream(2000, 1024, 9, 0).collect();
        assert!((a.len() as f64 - 2000.0).abs() < 2000.0 * 0.15);
        assert!(a.windows(2).all(|p| p[0].time <= p[1].time));
        assert!(a.iter().all(|p| p.src != p.dst && p.time < f.horizon));
        let b: Vec<_> = f.packet_stream(2000, 1024, 9, 0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_plan_hits_the_contact_budget_in_tiny_memory() {
        let f = fleet();
        let plan = f.periodic_plan(100, 1, 0);
        assert_eq!(plan.atom_count(), 100);
        let windows = plan.window_count() as f64;
        assert!(
            (windows - f.contacts as f64).abs() < f.contacts as f64 * 0.05,
            "expected ~{}, got {windows}",
            f.contacts
        );
        // ≥10× plan-representation reduction vs materializing.
        assert!(plan.materialized_bytes() as usize >= 10 * plan.in_memory_bytes());
        let expanded: Vec<_> = std::sync::Arc::new(plan.clone()).stream().collect();
        assert_eq!(expanded.len() as u64, plan.window_count());
        assert!(expanded.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(expanded
            .iter()
            .all(|w| w.a != w.b && w.a.index() < f.nodes && w.end < f.horizon));
        assert_eq!(
            plan,
            f.periodic_plan(100, 1, 0),
            "deterministic in (seed, run)"
        );
        assert_ne!(plan, f.periodic_plan(100, 1, 1), "runs differ");
    }

    #[test]
    fn periodic_plan_respects_hub_bias_and_duration() {
        let f = ScaleFleet {
            hubs: 16,
            hub_bias: 0.5,
            contact_duration: TimeDelta::from_secs(60),
            ..fleet()
        };
        let plan = f.periodic_plan(400, 9, 0);
        let hub_routes = plan
            .atoms()
            .iter()
            .filter(|a| {
                let t = a.template();
                t.a.index() < 16 || t.b.index() < 16
            })
            .count() as f64;
        let share = hub_routes / plan.atom_count() as f64;
        assert!(
            (0.35..0.65).contains(&share),
            "hub route share {share} far from bias"
        );
        let expanded: Vec<_> = std::sync::Arc::new(plan).stream().collect();
        assert!(expanded.iter().all(|w| w.end <= f.horizon));
        assert!(expanded.iter().any(|w| !w.is_instantaneous()));
    }

    #[test]
    fn hub_structure_biases_meetings_and_addresses_traffic() {
        let f = ScaleFleet {
            hubs: 16,
            hub_bias: 0.5,
            ..fleet()
        };
        let windows: Vec<_> = f.contact_stream(4, 0).take(4000).collect();
        let hub_meetings = windows
            .iter()
            .filter(|w| w.a.index() < 16 || w.b.index() < 16)
            .count() as f64;
        let share = hub_meetings / windows.len() as f64;
        assert!(
            (0.4..0.6).contains(&share),
            "hub meeting share {share} far from bias"
        );
        assert!(windows.iter().all(|w| w.a != w.b));
        let packets: Vec<_> = f.packet_stream(1000, 1024, 4, 0).collect();
        assert!(packets.iter().all(|p| p.dst.index() < 16 && p.src != p.dst));
    }

    fn regional() -> RegionalFleet {
        RegionalFleet {
            fleet: ScaleFleet {
                hubs: 32,
                hub_bias: 0.3,
                ..fleet()
            },
            regions: 8,
            locality: 0.9,
        }
    }

    #[test]
    fn regional_partition_aligns_with_region_boundaries() {
        let rf = regional();
        for shards in [1, 2, 4, 8] {
            let p = rf.partition(shards);
            assert_eq!(p.shards(), shards);
            assert_eq!(p.nodes(), rf.fleet.nodes);
            // Every shard boundary is also a region boundary.
            let layout = Partition::even(rf.fleet.nodes, rf.regions);
            for s in 0..shards {
                let start = p.range(s).start;
                assert!(
                    (0..rf.regions).any(|r| layout.range(r).start == start),
                    "shard {s} starts mid-region at node {start}"
                );
            }
        }
    }

    #[test]
    fn regional_contacts_are_local_or_gateway_backbone() {
        let rf = regional();
        let part = rf.partition(4);
        let layout = Partition::even(rf.fleet.nodes, rf.regions);
        let gws = rf.gateways_per_region();
        let windows: Vec<_> = rf.contact_stream(11, 0).take(5000).collect();
        assert!(!windows.is_empty());
        let mut cross = 0usize;
        for w in &windows {
            assert!(w.a != w.b);
            let (ra, rb) = (
                layout.shard_of(w.a), // region of a (layout = region partition)
                layout.shard_of(w.b),
            );
            if ra != rb {
                // Cross-region meetings happen only between gateways.
                for (n, r) in [(w.a, ra), (w.b, rb)] {
                    assert!(
                        n.index() - layout.range(r).start < gws,
                        "cross-region endpoint {n} is not a gateway"
                    );
                }
            }
            if part.shard_of(w.a) != part.shard_of(w.b) {
                cross += 1;
            }
        }
        // With locality 0.9 the cross-shard share is a sliver, but the
        // backbone must exist.
        assert!(cross >= 1, "no backbone meetings at all");
        assert!(
            (cross as f64) < 0.2 * windows.len() as f64,
            "cross-shard share too large: {cross}/{}",
            windows.len()
        );
    }

    #[test]
    fn regional_packets_stay_in_region_and_streams_are_deterministic() {
        let rf = regional();
        let layout = Partition::even(rf.fleet.nodes, rf.regions);
        let gws = rf.gateways_per_region();
        let packets: Vec<_> = rf.packet_stream(2000, 1024, 11, 0).collect();
        assert!(!packets.is_empty());
        for p in &packets {
            assert!(p.src != p.dst);
            let r = layout.shard_of(p.dst);
            assert_eq!(layout.shard_of(p.src), r, "packet crosses regions");
            assert!(
                p.dst.index() - layout.range(r).start < gws,
                "dst not a gateway"
            );
        }
        let again: Vec<_> = rf.packet_stream(2000, 1024, 11, 0).collect();
        assert_eq!(packets, again);
        let w1: Vec<_> = rf.contact_stream(11, 3).take(500).collect();
        let w2: Vec<_> = rf.contact_stream(11, 3).take(500).collect();
        assert_eq!(w1, w2);
        assert_ne!(
            w1,
            rf.contact_stream(11, 4).take(500).collect::<Vec<_>>(),
            "runs must differ"
        );
    }

    #[test]
    fn regional_plan_yields_a_finite_cross_shard_horizon() {
        let rf = regional();
        let plan = rf.periodic_plan(4000, 11, 0);
        assert!(plan.window_count() > 0);
        let part = rf.partition(4);
        let horizon = plan
            .first_cross_shard_start(&part)
            .expect("backbone routes exist");
        assert!(horizon < rf.fleet.horizon);
        // Single shard: everything is local, no barrier needed.
        assert_eq!(plan.first_cross_shard_start(&rf.partition(1)), None);
        // Deterministic compilation.
        assert_eq!(plan, rf.periodic_plan(4000, 11, 0));
    }
}
