//! Streaming mobility sources: contact windows pulled lazily in time order.
//!
//! The materialized generators ([`UniformExponential::generate_windows`],
//! [`PowerLaw::generate_windows`]) draw every pair's full Poisson process
//! from one sequential RNG and sort — which is exactly what the seed
//! figures replay, and exactly what does not scale: the whole schedule
//! lives in memory before the first contact is simulated.
//!
//! The streaming counterparts here invert that: every unordered node pair
//! owns an independent RNG substream derived from `(seed, run, pair)`, and
//! a k-way heap merge yields windows one at a time in nondecreasing start
//! order. Memory is O(pairs) — one pending arrival per pair — regardless
//! of how many meetings the horizon holds, and the emitted sequence is
//! *identical* to materializing every pair's process and stable-sorting
//! (the [`Schedule`] counterpart built by
//! [`PairPoissonStream::materialize`]), which the property tests verify.
//! Because the substreams are independent, the sequence is also unaffected
//! by how pulls interleave with other sources.
//!
//! The per-pair substream scheme intentionally differs from the
//! single-sequential-RNG materialized generators: those are kept bit-exact
//! for the seed figures, while streaming scenarios opt into the scheme that
//! can scale. Both are deterministic in `(seed, run)`.

use crate::exponential::window;
use crate::{PowerLaw, UniformExponential};
use dtn_sim::{CompiledPlan, ContactWindow, NodeId, Schedule, Time, TimeDelta};
use dtn_stats::sample::Exponential;
use dtn_stats::SeedStream;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pair's meeting process: an exponential-gap clock over its own RNG.
#[derive(Debug)]
struct PairState {
    a: NodeId,
    b: NodeId,
    gap: Exponential,
    /// Current arrival time, seconds (the one pending in the heap).
    t: f64,
    rng: StdRng,
}

/// A lazy, time-ordered merge of per-pair Poisson meeting processes.
///
/// Built by [`UniformExponential::stream`] and [`PowerLaw::stream`];
/// implements [`Iterator`] (and therefore `dtn_sim::ContactSource`).
#[derive(Debug)]
pub struct PairPoissonStream {
    pairs: Vec<PairState>,
    /// Min-heap of `(start µs, pair id)` — one pending arrival per pair.
    /// Tying on microseconds breaks by pair id, matching the stable sort
    /// of the materialized counterpart (pairs are pushed in id order).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    opportunity_bytes: u64,
    duration: TimeDelta,
    horizon: Time,
}

impl PairPoissonStream {
    /// Builds the stream. `mean_of(i, j)` gives the pair's mean
    /// inter-meeting time in seconds; pair RNGs derive from
    /// `(seeds, run, pair id)` in lexicographic `(i, j)` order.
    fn build(
        nodes: usize,
        mean_of: impl Fn(usize, usize) -> f64,
        opportunity_bytes: u64,
        duration: TimeDelta,
        horizon: Time,
        seeds: &SeedStream,
        run: u64,
    ) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        let pair_count = nodes * (nodes - 1) / 2;
        assert!(
            u32::try_from(pair_count).is_ok(),
            "pair space too large for a pairwise stream; use a sparse scale source"
        );
        let horizon_secs = horizon.as_secs_f64();
        let mut pairs = Vec::with_capacity(pair_count);
        let mut heap = BinaryHeap::with_capacity(pair_count);
        let mut p = 0u32;
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                let mean = mean_of(i, j);
                assert!(mean > 0.0, "pair mean inter-meeting time must be positive");
                let gap = Exponential::new(1.0 / mean);
                let mut rng = seeds.rng_indexed("pair", (run << 32) | u64::from(p));
                let t = gap.sample(&mut rng);
                if t < horizon_secs {
                    heap.push(Reverse((Time::from_secs_f64(t).0, p)));
                }
                pairs.push(PairState {
                    a: NodeId(i as u32),
                    b: NodeId(j as u32),
                    gap,
                    t,
                    rng,
                });
                p += 1;
            }
        }
        Self {
            pairs,
            heap,
            opportunity_bytes,
            duration,
            horizon,
        }
    }

    /// Drains the stream into a [`CompiledPlan`]: each pair's meeting run
    /// folds into a delta-encoded atom (endpoints, opportunity and
    /// duration are constant per pair, so only the start gaps remain),
    /// which costs one `TimeDelta` per meeting instead of a whole
    /// [`ContactWindow`]. The plan's expansion is byte-identical to this
    /// stream — same windows, same order — because the compressor
    /// preserves the ordered sequence exactly.
    ///
    /// Peak memory while compiling is the merge state (O(pairs)) plus the
    /// plan itself; the expanded schedule never exists.
    pub fn compile(self) -> CompiledPlan {
        CompiledPlan::compress(self)
    }

    /// The materialized [`Schedule`] counterpart: every pair's process
    /// generated to completion from the same substreams, then
    /// stable-sorted. Yields exactly the windows [`Iterator::next`] would,
    /// in the same order — the equivalence the property tests pin down.
    pub fn materialize(mut self) -> Schedule {
        let horizon_secs = self.horizon.as_secs_f64();
        let mut windows = Vec::new();
        for pair in &mut self.pairs {
            let mut t = pair.t;
            while t < horizon_secs {
                windows.push(window(
                    Time::from_secs_f64(t),
                    pair.a,
                    pair.b,
                    self.opportunity_bytes,
                    self.duration,
                    self.horizon,
                ));
                t += pair.gap.sample(&mut pair.rng);
            }
        }
        Schedule::new(windows)
    }
}

impl Iterator for PairPoissonStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        let Reverse((_, p)) = self.heap.pop()?;
        let pair = &mut self.pairs[p as usize];
        let emitted = window(
            Time::from_secs_f64(pair.t),
            pair.a,
            pair.b,
            self.opportunity_bytes,
            self.duration,
            self.horizon,
        );
        pair.t += pair.gap.sample(&mut pair.rng);
        if pair.t < self.horizon.as_secs_f64() {
            self.heap.push(Reverse((Time::from_secs_f64(pair.t).0, p)));
        }
        Some(emitted)
    }
}

impl UniformExponential {
    /// Streaming counterpart of [`UniformExponential::generate_windows`]:
    /// same model, per-pair RNG substreams derived from `(seed, run)`,
    /// windows pulled lazily in start order.
    pub fn stream(
        &self,
        horizon: Time,
        duration: TimeDelta,
        seed: u64,
        run: u64,
    ) -> PairPoissonStream {
        assert!(
            self.mean_inter_meeting > TimeDelta::ZERO,
            "mean inter-meeting time must be positive"
        );
        let mean = self.mean_inter_meeting.as_secs_f64();
        PairPoissonStream::build(
            self.nodes,
            |_, _| mean,
            self.opportunity_bytes,
            duration,
            horizon,
            &SeedStream::new(seed).derive("exp-stream"),
            run,
        )
    }
}

impl PowerLaw {
    /// Streaming counterpart of [`PowerLaw::generate_windows`]: popularity
    /// ranks are drawn from the `(seed, run)` substream, then every pair
    /// streams from its own substream.
    pub fn stream(
        &self,
        horizon: Time,
        duration: TimeDelta,
        seed: u64,
        run: u64,
    ) -> PairPoissonStream {
        assert!(
            self.base_mean > TimeDelta::ZERO,
            "base mean must be positive"
        );
        let seeds = SeedStream::new(seed).derive("pl-stream");
        let ranks = self.draw_popularity(&mut seeds.rng_indexed("ranks", run));

        // Normalizer: average rank product over unordered pairs (matches
        // the materialized generator).
        let mut sum = 0.0f64;
        let mut pair_count = 0.0f64;
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                sum += f64::from(ranks[i] * ranks[j]);
                pair_count += 1.0;
            }
        }
        let norm = sum / pair_count;
        let base = self.base_mean.as_secs_f64();

        PairPoissonStream::build(
            self.nodes,
            |i, j| base * f64::from(ranks[i] * ranks[j]) / norm,
            self.opportunity_bytes,
            duration,
            horizon,
            &seeds,
            run,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_model() -> UniformExponential {
        UniformExponential {
            nodes: 8,
            mean_inter_meeting: TimeDelta::from_secs(50),
            opportunity_bytes: 4096,
        }
    }

    #[test]
    fn stream_matches_materialized_schedule() {
        let model = exp_model();
        let horizon = Time::from_secs(2000);
        let streamed: Vec<ContactWindow> = model.stream(horizon, TimeDelta::ZERO, 7, 0).collect();
        let materialized = model.stream(horizon, TimeDelta::ZERO, 7, 0).materialize();
        assert!(!streamed.is_empty());
        assert_eq!(streamed, materialized.windows());
    }

    #[test]
    fn compiled_plan_replays_the_stream_compactly() {
        let model = exp_model();
        let horizon = Time::from_secs(2000);
        let streamed: Vec<ContactWindow> = model.stream(horizon, TimeDelta::ZERO, 7, 0).collect();
        let plan = std::sync::Arc::new(model.stream(horizon, TimeDelta::ZERO, 7, 0).compile());
        let replayed: Vec<ContactWindow> = plan.stream().collect();
        assert_eq!(replayed, streamed);
        // Per-pair runs fold: far fewer atoms than windows.
        assert!(plan.atom_count() <= 8 * 7 / 2);
        assert!(plan.in_memory_bytes() < streamed.len() * size_of::<ContactWindow>());
    }

    #[test]
    fn stream_is_time_ordered_and_run_sensitive() {
        let model = exp_model();
        let horizon = Time::from_secs(1000);
        let a: Vec<_> = model.stream(horizon, TimeDelta::ZERO, 7, 0).collect();
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        let b: Vec<_> = model.stream(horizon, TimeDelta::ZERO, 7, 1).collect();
        assert_ne!(a, b, "different runs draw different substreams");
        let c: Vec<_> = model.stream(horizon, TimeDelta::ZERO, 7, 0).collect();
        assert_eq!(a, c, "same (seed, run) replays identically");
    }

    #[test]
    fn powerlaw_stream_matches_materialized() {
        let model = PowerLaw {
            nodes: 8,
            base_mean: TimeDelta::from_secs(80),
            opportunity_bytes: 1024,
        };
        let horizon = Time::from_secs(3000);
        let streamed: Vec<ContactWindow> = model
            .stream(horizon, TimeDelta::from_secs(30), 3, 2)
            .collect();
        let materialized = model
            .stream(horizon, TimeDelta::from_secs(30), 3, 2)
            .materialize();
        assert_eq!(streamed, materialized.windows());
        assert!(streamed.iter().all(|w| w.end <= horizon));
    }

    #[test]
    fn durative_streams_clamp_at_horizon() {
        let model = exp_model();
        let horizon = Time::from_secs(500);
        let windows: Vec<_> = model
            .stream(horizon, TimeDelta::from_secs(60), 5, 0)
            .collect();
        assert!(windows.iter().all(|w| w.end <= horizon));
        assert!(windows.iter().any(|w| !w.is_instantaneous()));
    }
}
