//! Uniform exponential mobility (§4.1.1, §6.3.3).
//!
//! "Suppose all nodes meet according to a uniform exponential distribution
//! with mean time 1/λ" — every unordered pair generates meetings as an
//! independent Poisson process, each meeting offering a fixed transfer
//! opportunity. This model has the closed forms Estimate Delay is built on
//! (min of k i.i.d. exponentials is exponential with mean 1/kλ), which the
//! integration tests verify the simulator recovers.

use dtn_sim::{Contact, NodeId, Schedule, Time, TimeDelta};
use dtn_stats::sample::poisson_process;
use rand::Rng;

/// Uniform exponential pairwise mobility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformExponential {
    /// Number of nodes.
    pub nodes: usize,
    /// Mean inter-meeting time per node pair (1/λ).
    pub mean_inter_meeting: TimeDelta,
    /// Transfer opportunity per meeting, in bytes (Table 4: 100 KB).
    pub opportunity_bytes: u64,
}

impl UniformExponential {
    /// Generates a meeting schedule over `[0, horizon)`.
    pub fn generate<R: Rng + ?Sized>(&self, horizon: Time, rng: &mut R) -> Schedule {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.mean_inter_meeting > TimeDelta::ZERO,
            "mean inter-meeting time must be positive"
        );
        let rate = 1.0 / self.mean_inter_meeting.as_secs_f64();
        let mut contacts = Vec::new();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                for t in poisson_process(rate, horizon.as_secs_f64(), rng) {
                    contacts.push(Contact::new(
                        Time::from_secs_f64(t),
                        NodeId(i as u32),
                        NodeId(j as u32),
                        self.opportunity_bytes,
                    ));
                }
            }
        }
        Schedule::new(contacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_stats::stream;

    #[test]
    fn meeting_count_matches_rate() {
        let model = UniformExponential {
            nodes: 10,
            mean_inter_meeting: TimeDelta::from_secs(100),
            opportunity_bytes: 100 * 1024,
        };
        let mut rng = stream(1, "exp-mob");
        let horizon = Time::from_secs(2000);
        let s = model.generate(horizon, &mut rng);
        // 45 pairs × 20 expected meetings each = 900.
        let expected = 45.0 * 20.0;
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.15,
            "expected ~{expected}, got {got}"
        );
        assert!(s.contacts().windows(2).all(|w| w[0].time <= w[1].time));
        assert!(s.contacts().iter().all(|c| c.bytes == 100 * 1024));
    }

    #[test]
    fn deterministic_given_seed() {
        let model = UniformExponential {
            nodes: 5,
            mean_inter_meeting: TimeDelta::from_secs(50),
            opportunity_bytes: 1,
        };
        let a = model.generate(Time::from_secs(500), &mut stream(9, "m"));
        let b = model.generate(Time::from_secs(500), &mut stream(9, "m"));
        assert_eq!(a, b);
    }

    #[test]
    fn all_pairs_eventually_meet() {
        let model = UniformExponential {
            nodes: 6,
            mean_inter_meeting: TimeDelta::from_secs(10),
            opportunity_bytes: 1,
        };
        let s = model.generate(Time::from_secs(1000), &mut stream(3, "m"));
        let mut seen = std::collections::BTreeSet::new();
        for c in s.contacts() {
            seen.insert((c.a.0.min(c.b.0), c.a.0.max(c.b.0)));
        }
        assert_eq!(seen.len(), 15, "every pair should meet");
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn rejects_single_node() {
        let model = UniformExponential {
            nodes: 1,
            mean_inter_meeting: TimeDelta::from_secs(1),
            opportunity_bytes: 1,
        };
        let _ = model.generate(Time::from_secs(10), &mut stream(0, "m"));
    }
}
