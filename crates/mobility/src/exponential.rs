//! Uniform exponential mobility (§4.1.1, §6.3.3).
//!
//! "Suppose all nodes meet according to a uniform exponential distribution
//! with mean time 1/λ" — every unordered pair generates meetings as an
//! independent Poisson process, each meeting offering a fixed transfer
//! opportunity. This model has the closed forms Estimate Delay is built on
//! (min of k i.i.d. exponentials is exponential with mean 1/kλ), which the
//! integration tests verify the simulator recovers.

use dtn_sim::{ContactWindow, NodeId, Schedule, Time, TimeDelta};
use dtn_stats::sample::poisson_process;
use rand::Rng;

/// Uniform exponential pairwise mobility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformExponential {
    /// Number of nodes.
    pub nodes: usize,
    /// Mean inter-meeting time per node pair (1/λ).
    pub mean_inter_meeting: TimeDelta,
    /// Transfer opportunity per meeting, in bytes (Table 4: 100 KB).
    pub opportunity_bytes: u64,
}

impl UniformExponential {
    /// Generates a meeting schedule over `[0, horizon)` of instantaneous
    /// contacts (the paper's model).
    pub fn generate<R: Rng + ?Sized>(&self, horizon: Time, rng: &mut R) -> Schedule {
        self.generate_windows(horizon, TimeDelta::ZERO, rng)
    }

    /// Generates a meeting schedule over `[0, horizon)` of contact windows
    /// of fixed `duration`. The per-meeting opportunity stays
    /// `opportunity_bytes` regardless of duration — the link rate is
    /// `opportunity_bytes / duration` — so sweeping the duration isolates
    /// the *shape* of the opportunity (lump versus slow accrual that churn
    /// can interrupt) from its size. Windows are clamped at the horizon
    /// (the run ends; a still-open window is truncated like an
    /// interruption), so no delivery can land past it. `TimeDelta::ZERO`
    /// yields exactly [`UniformExponential::generate`]'s instantaneous
    /// schedule: the RNG draw sequence is identical.
    pub fn generate_windows<R: Rng + ?Sized>(
        &self,
        horizon: Time,
        duration: TimeDelta,
        rng: &mut R,
    ) -> Schedule {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.mean_inter_meeting > TimeDelta::ZERO,
            "mean inter-meeting time must be positive"
        );
        let rate = 1.0 / self.mean_inter_meeting.as_secs_f64();
        let mut contacts = Vec::new();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                for t in poisson_process(rate, horizon.as_secs_f64(), rng) {
                    contacts.push(window(
                        Time::from_secs_f64(t),
                        NodeId(i as u32),
                        NodeId(j as u32),
                        self.opportunity_bytes,
                        duration,
                        horizon,
                    ));
                }
            }
        }
        Schedule::new(contacts)
    }
}

/// A window at `start` carrying `bytes` total: a lump when `duration` is
/// zero, otherwise spread over the window at rate `bytes / duration`. The
/// end is clamped at `horizon` — the run is over at day end, so a window
/// reaching past it is truncated (losing the tail of its capacity, exactly
/// like a churn interruption) and no delivery can be recorded past the
/// horizon.
pub(crate) fn window(
    start: Time,
    a: NodeId,
    b: NodeId,
    bytes: u64,
    duration: TimeDelta,
    horizon: Time,
) -> ContactWindow {
    if duration == TimeDelta::ZERO {
        ContactWindow::instant(start, a, b, bytes)
    } else {
        // Floor, not round: the full window must never offer more than the
        // lump opportunity (truncation is the direction the docs accept).
        let rate = (bytes as f64 / duration.as_secs_f64()).floor().max(1.0) as u64;
        let end = (start + duration).min(horizon).max(start);
        ContactWindow::new(start, end, a, b, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_stats::stream;

    #[test]
    fn meeting_count_matches_rate() {
        let model = UniformExponential {
            nodes: 10,
            mean_inter_meeting: TimeDelta::from_secs(100),
            opportunity_bytes: 100 * 1024,
        };
        let mut rng = stream(1, "exp-mob");
        let horizon = Time::from_secs(2000);
        let s = model.generate(horizon, &mut rng);
        // 45 pairs × 20 expected meetings each = 900.
        let expected = 45.0 * 20.0;
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.15,
            "expected ~{expected}, got {got}"
        );
        assert!(s.windows().windows(2).all(|w| w[0].start <= w[1].start));
        assert!(s.windows().iter().all(|c| c.capacity() == 100 * 1024));
        assert!(s.windows().iter().all(|c| c.is_instantaneous()));
    }

    #[test]
    fn deterministic_given_seed() {
        let model = UniformExponential {
            nodes: 5,
            mean_inter_meeting: TimeDelta::from_secs(50),
            opportunity_bytes: 1,
        };
        let a = model.generate(Time::from_secs(500), &mut stream(9, "m"));
        let b = model.generate(Time::from_secs(500), &mut stream(9, "m"));
        assert_eq!(a, b);
    }

    #[test]
    fn all_pairs_eventually_meet() {
        let model = UniformExponential {
            nodes: 6,
            mean_inter_meeting: TimeDelta::from_secs(10),
            opportunity_bytes: 1,
        };
        let s = model.generate(Time::from_secs(1000), &mut stream(3, "m"));
        let mut seen = std::collections::BTreeSet::new();
        for c in s.windows() {
            seen.insert((c.a.0.min(c.b.0), c.a.0.max(c.b.0)));
        }
        assert_eq!(seen.len(), 15, "every pair should meet");
    }

    #[test]
    fn windowed_generation_matches_instant_draws() {
        let model = UniformExponential {
            nodes: 6,
            mean_inter_meeting: TimeDelta::from_secs(50),
            opportunity_bytes: 60_000,
        };
        let horizon = Time::from_secs(500);
        let instant = model.generate(horizon, &mut stream(4, "w"));
        let windowed =
            model.generate_windows(horizon, TimeDelta::from_secs(60), &mut stream(4, "w"));
        // Same meeting processes (identical RNG use), different shapes.
        assert_eq!(instant.len(), windowed.len());
        let mut clamped = 0;
        for (i, w) in instant.windows().iter().zip(windowed.windows()) {
            assert_eq!(i.start, w.start);
            // 60 000 B over 60 s; windows never outlive the run.
            assert_eq!(w.bytes_per_sec, 1000);
            assert!(w.end <= horizon);
            if w.start + TimeDelta::from_secs(60) <= horizon {
                // ...full-length away from the horizon, same capacity...
                assert_eq!(w.duration(), TimeDelta::from_secs(60));
                assert_eq!(w.capacity(), i.capacity());
            } else {
                // ...truncated at day end otherwise (tail capacity lost).
                assert_eq!(w.end, horizon);
                assert!(w.capacity() < i.capacity());
                clamped += 1;
            }
        }
        assert!(clamped > 0, "some window should hit the horizon");
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn rejects_single_node() {
        let model = UniformExponential {
            nodes: 1,
            mean_inter_meeting: TimeDelta::from_secs(1),
            opportunity_bytes: 1,
        };
        let _ = model.generate(Time::from_secs(10), &mut stream(0, "m"));
    }
}
