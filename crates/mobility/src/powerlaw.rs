//! Power-law (popularity-skewed) mobility (§6.3).
//!
//! "When mobility is modeled using power law, two nodes meet with an
//! exponential inter-meeting time, but the mean of the exponential
//! distribution is determined by the popularity of the nodes. For the 20
//! nodes, we randomly set a popularity value of 1 to 20, with 1 being most
//! popular." Prior studies (refs. 8 and 21 in the paper) motivate the skew:
//! human-carried DTNs show heavy-tailed inter-meeting behaviour.
//!
//! Concretely, node popularity ranks `r ∈ {1..n}` are a random permutation;
//! the pair `(i, j)` meets with mean inter-meeting time
//! `base_mean · (r_i · r_j) / norm`, where `norm` is the average of
//! `r_i · r_j` over all pairs — so `base_mean` is the *average* pairwise
//! mean, but popular pairs meet far more often than unpopular ones
//! (rank products span `1·2` to `(n−1)·n`, a ~two-decade spread).

use crate::exponential::window;
use dtn_sim::{NodeId, Schedule, Time, TimeDelta};
use dtn_stats::sample::poisson_process;
use rand::seq::SliceRandom;
use rand::Rng;

/// Popularity-skewed exponential mobility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Number of nodes (the paper uses 20).
    pub nodes: usize,
    /// Average pairwise mean inter-meeting time.
    pub base_mean: TimeDelta,
    /// Transfer opportunity per meeting, in bytes (Table 4: 100 KB).
    pub opportunity_bytes: u64,
}

impl PowerLaw {
    /// Draws a popularity ranking (1 = most popular) as a random permutation.
    pub fn draw_popularity<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let mut ranks: Vec<u32> = (1..=self.nodes as u32).collect();
        ranks.shuffle(rng);
        ranks
    }

    /// Generates a meeting schedule over `[0, horizon)` of instantaneous
    /// contacts (the paper's model).
    pub fn generate<R: Rng + ?Sized>(&self, horizon: Time, rng: &mut R) -> Schedule {
        self.generate_windows(horizon, TimeDelta::ZERO, rng)
    }

    /// Generates a meeting schedule of contact windows of fixed `duration`,
    /// each carrying `opportunity_bytes` total (rate = bytes / duration),
    /// clamped at the horizon. `TimeDelta::ZERO` reproduces
    /// [`PowerLaw::generate`] exactly — the RNG draw sequence is identical.
    pub fn generate_windows<R: Rng + ?Sized>(
        &self,
        horizon: Time,
        duration: TimeDelta,
        rng: &mut R,
    ) -> Schedule {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.base_mean > TimeDelta::ZERO,
            "base mean must be positive"
        );
        let ranks = self.draw_popularity(rng);

        // Normalizer: average rank product over unordered pairs.
        let mut sum = 0.0f64;
        let mut pairs = 0.0f64;
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                sum += f64::from(ranks[i] * ranks[j]);
                pairs += 1.0;
            }
        }
        let norm = sum / pairs;

        let mut contacts = Vec::new();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let mean = self.base_mean.as_secs_f64() * f64::from(ranks[i] * ranks[j]) / norm;
                let rate = 1.0 / mean;
                for t in poisson_process(rate, horizon.as_secs_f64(), rng) {
                    contacts.push(window(
                        Time::from_secs_f64(t),
                        NodeId(i as u32),
                        NodeId(j as u32),
                        self.opportunity_bytes,
                        duration,
                        horizon,
                    ));
                }
            }
        }
        Schedule::new(contacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_stats::stream;
    use std::collections::BTreeMap;

    fn model() -> PowerLaw {
        PowerLaw {
            nodes: 20,
            base_mean: TimeDelta::from_secs(100),
            opportunity_bytes: 100 * 1024,
        }
    }

    #[test]
    fn average_meeting_count_is_calibrated() {
        // With mean pairwise inter-meeting = base_mean on average, total
        // meetings ≈ pairs × horizon / base_mean... but the average of
        // 1/mean is not 1/average-of-means for a skewed distribution, so we
        // only check the count lies in a generous band and is dominated by
        // popular pairs.
        let mut rng = stream(1, "pl");
        let s = model().generate(Time::from_secs(2000), &mut rng);
        assert!(s.len() > 1000, "skew concentrates meetings: {}", s.len());
    }

    #[test]
    fn popular_pairs_meet_more() {
        let mut rng = stream(2, "pl");
        let m = model();
        let ranks = {
            // Re-derive the ranks the generator will draw by using a clone
            // of the RNG state.
            let mut probe = stream(2, "pl");
            m.draw_popularity(&mut probe)
        };
        let s = m.generate(Time::from_secs(5000), &mut rng);
        let mut counts: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for c in s.windows() {
            *counts.entry((c.a.0, c.b.0)).or_default() += 1;
        }
        // Identify the most and least popular pairs by rank product.
        let mut best_pair = (0u32, 1u32);
        let mut worst_pair = (0u32, 1u32);
        let (mut best, mut worst) = (u32::MAX, 0u32);
        for i in 0..m.nodes {
            for j in (i + 1)..m.nodes {
                let prod = ranks[i] * ranks[j];
                if prod < best {
                    best = prod;
                    best_pair = (i as u32, j as u32);
                }
                if prod > worst {
                    worst = prod;
                    worst_pair = (i as u32, j as u32);
                }
            }
        }
        let popular = counts.get(&best_pair).copied().unwrap_or(0);
        let unpopular = counts.get(&worst_pair).copied().unwrap_or(0);
        assert!(
            popular > unpopular.saturating_mul(5),
            "popular {popular} vs unpopular {unpopular}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = model().generate(Time::from_secs(500), &mut stream(7, "pl"));
        let b = model().generate(Time::from_secs(500), &mut stream(7, "pl"));
        assert_eq!(a, b);
    }

    #[test]
    fn popularity_is_permutation() {
        let mut rng = stream(3, "pl");
        let mut ranks = model().draw_popularity(&mut rng);
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=20).collect::<Vec<u32>>());
    }
}
