//! Synthetic DieselNet: the substitute for the paper's vehicular testbed.
//!
//! The real evaluation replays 58 days of traces from 40 buses around
//! Amherst, MA (§5). Those traces are not available offline, so this module
//! generates a synthetic fleet with the structural properties the evaluation
//! depends on, calibrated to the Table 3 daily aggregates:
//!
//! * 40 buses total, of which "a subset is on the road each day"
//!   (≈19 scheduled per day), operating a 19-hour service day (Table 4).
//! * Buses run on a ring of overlapping routes. Same-route buses meet
//!   often, adjacent-route buses occasionally, distant-route buses almost
//!   never — so some pairs never meet directly, which is why §4.1.2
//!   estimates meeting times transitively through up to `h = 3` hops.
//! * ≈147.5 meetings per day, with heavy-tailed (log-normal) per-meeting
//!   transfer opportunities: "The available bandwidth varies significantly
//!   across transfer opportunities in our bus traces" (§6.2.2) — this is
//!   what creates the bottleneck links of Fig. 9.
//!
//! Substitution note (also recorded in DESIGN.md): synthetic contacts keep
//! the *shape* of the evaluation — intermittent short-lived meetings, highly
//! variable link capacity, day-scoped packet lifetimes — not the authors'
//! absolute numbers.

use crate::exponential::window;
use dtn_sim::{CompiledPlan, ContactWindow, NodeId, Schedule, Time, TimeDelta};
use dtn_stats::rng::SeedStream;
use dtn_stats::sample::{poisson_process, Exponential, LogNormal, Poisson};
use dtn_trace::{ContactRecord, Record, Trace};
use rand::seq::SliceRandom;
use std::sync::Arc;

/// Fleet and calibration parameters for the synthetic DieselNet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieselNetConfig {
    /// Fleet size (paper: 40 buses).
    pub total_buses: usize,
    /// Number of routes arranged in a ring.
    pub routes: usize,
    /// Mean number of buses scheduled per day (paper: 19).
    pub avg_on_road: f64,
    /// Service-day length (Table 4: 19 hours).
    pub day_length: TimeDelta,
    /// Meetings per hour for a pair of buses on the same route.
    pub same_route_rate_per_hour: f64,
    /// Meetings per hour for buses on ring-adjacent routes.
    pub adjacent_route_rate_per_hour: f64,
    /// Meetings per hour for distant routes (≈ never: forces multi-hop).
    pub far_route_rate_per_hour: f64,
    /// Mean transfer-opportunity size per meeting, bytes.
    pub opportunity_mean_bytes: f64,
    /// Log-normal sigma of the opportunity size (link-capacity variance).
    pub opportunity_sigma: f64,
    /// Mean contact-window duration (exponentially distributed per
    /// meeting). `TimeDelta::ZERO` — the default, and the paper's model —
    /// emits instantaneous meetings and draws no extra randomness, so
    /// default fleets are bit-identical to the pre-window generator.
    pub mean_contact_duration: TimeDelta,
}

impl Default for DieselNetConfig {
    /// Calibrated so a day averages ≈147 meetings among ≈19 buses and
    /// ≈265 MB of offered capacity per direction (Table 3 scale).
    fn default() -> Self {
        Self {
            total_buses: 40,
            routes: 10,
            avg_on_road: 19.0,
            day_length: TimeDelta::from_hours(19),
            same_route_rate_per_hour: 0.22,
            adjacent_route_rate_per_hour: 0.07,
            // All routes cross the town centre, so even distant-route buses
            // occasionally meet; rare enough that transitive estimation
            // (§4.1.2) still matters.
            far_route_rate_per_hour: 0.025,
            opportunity_mean_bytes: 1.8e6,
            opportunity_sigma: 1.1,
            mean_contact_duration: TimeDelta::ZERO,
        }
    }
}

/// One generated service day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayTrace {
    /// Day index.
    pub day: u32,
    /// Buses scheduled (on the road) this day, ascending.
    pub on_road: Vec<NodeId>,
    /// The day's meeting schedule.
    pub schedule: Schedule,
}

/// The synthetic fleet: route assignments are fixed across days (a bus
/// serves its route), while the scheduled subset rotates daily.
#[derive(Debug, Clone)]
pub struct DieselNet {
    cfg: DieselNetConfig,
    route_of: Vec<usize>,
    seeds: SeedStream,
}

impl DieselNet {
    /// Builds a fleet with deterministic route assignments from `seed`.
    pub fn new(cfg: DieselNetConfig, seed: u64) -> Self {
        assert!(cfg.total_buses >= 2, "need at least two buses");
        assert!(cfg.routes >= 2, "need at least two routes");
        assert!(cfg.avg_on_road >= 2.0, "need at least two buses per day");
        let seeds = SeedStream::new(seed).derive("dieselnet");
        let mut rng = seeds.rng("routes");
        // Balanced assignment: round-robin then shuffle bus order, so every
        // route has ⌈n/routes⌉ or ⌊n/routes⌋ buses.
        let mut buses: Vec<usize> = (0..cfg.total_buses).collect();
        buses.shuffle(&mut rng);
        let mut route_of = vec![0usize; cfg.total_buses];
        for (slot, &bus) in buses.iter().enumerate() {
            route_of[bus] = slot % cfg.routes;
        }
        Self {
            cfg,
            route_of,
            seeds,
        }
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> &DieselNetConfig {
        &self.cfg
    }

    /// The route of each bus.
    pub fn route_of(&self, bus: NodeId) -> usize {
        self.route_of[bus.index()]
    }

    /// Ring distance between two routes.
    fn route_distance(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.cfg.routes - d)
    }

    /// Pairwise meeting rate (per hour) between two buses.
    pub fn pair_rate_per_hour(&self, a: NodeId, b: NodeId) -> f64 {
        match self.route_distance(self.route_of(a), self.route_of(b)) {
            0 => self.cfg.same_route_rate_per_hour,
            1 => self.cfg.adjacent_route_rate_per_hour,
            _ => self.cfg.far_route_rate_per_hour,
        }
    }

    /// Generates one service day. Determined entirely by the fleet seed and
    /// `day`, so individual days can be regenerated independently.
    pub fn generate_day(&self, day: u32) -> DayTrace {
        let mut rng = self.seeds.rng_indexed("day", u64::from(day));
        // How many buses are scheduled: Poisson around the mean, clamped to
        // a plausible band (the paper's counts vary day to day).
        let lo = (self.cfg.avg_on_road * 0.6).max(2.0) as usize;
        let hi = (self.cfg.avg_on_road * 1.4).min(self.cfg.total_buses as f64) as usize;
        let count = (Poisson::new(self.cfg.avg_on_road).sample(&mut rng) as usize).clamp(lo, hi);

        let mut fleet: Vec<usize> = (0..self.cfg.total_buses).collect();
        fleet.shuffle(&mut rng);
        let mut on_road: Vec<NodeId> = fleet[..count].iter().map(|&b| NodeId(b as u32)).collect();
        on_road.sort_unstable();

        let opp = LogNormal::with_mean(self.cfg.opportunity_mean_bytes, self.cfg.opportunity_sigma);
        let dur = (self.cfg.mean_contact_duration > TimeDelta::ZERO)
            .then(|| Exponential::with_mean(self.cfg.mean_contact_duration.as_secs_f64()));
        let hours = self.cfg.day_length.as_secs_f64() / 3600.0;
        let mut contacts = Vec::new();
        for (i, &a) in on_road.iter().enumerate() {
            for &b in &on_road[(i + 1)..] {
                let rate = self.pair_rate_per_hour(a, b);
                if rate <= 0.0 {
                    continue;
                }
                for t_hours in poisson_process(rate, hours, &mut rng) {
                    let bytes = opp.sample(&mut rng).max(1.0) as u64;
                    let duration = dur.as_ref().map_or(TimeDelta::ZERO, |d| {
                        TimeDelta::from_secs_f64(d.sample(&mut rng))
                    });
                    contacts.push(window(
                        Time::from_secs_f64(t_hours * 3600.0),
                        a,
                        b,
                        bytes,
                        duration,
                        // Windows end with the service day.
                        Time(self.cfg.day_length.0),
                    ));
                }
            }
        }
        DayTrace {
            day,
            on_road,
            schedule: Schedule::new(contacts),
        }
    }

    /// Generates `days` consecutive service days.
    pub fn generate_days(&self, days: u32) -> Vec<DayTrace> {
        (0..days).map(|d| self.generate_day(d)).collect()
    }

    /// Compiles one service day into a [`CompiledPlan`] whose expansion is
    /// byte-identical to `generate_day(day).schedule`. DieselNet meetings
    /// carry lognormal per-meeting opportunities, so most windows stay
    /// literal atoms — the win here is sharing (one plan behind an `Arc`
    /// serves every sweep point that replays the day) rather than deep
    /// compression, which belongs to fleets with repeating opportunities.
    pub fn compile_day(&self, day: u32) -> CompiledPlan {
        CompiledPlan::compress_schedule(&self.generate_day(day).schedule)
    }

    /// Streams the windows of consecutive service days, each day shifted
    /// onto a common timeline (day `days.start + k` by `k · day_length`).
    ///
    /// This is the streaming source behind the trace experiments: the
    /// warm-up prefix plus the measured day are pulled one day at a time
    /// — each day is generated when the stream reaches it and dropped when
    /// exhausted, so peak memory is one day's schedule, not the whole
    /// multi-day contact plan. The emitted sequence is exactly the
    /// concatenation of the per-day schedules (each internally
    /// start-sorted; day starts never cross the day boundary), i.e. what
    /// materializing and stable-sorting all shifted windows would yield.
    pub fn stream_days(fleet: Arc<Self>, days: std::ops::Range<u32>) -> DayWindowStream {
        DayWindowStream {
            day_length: TimeDelta(fleet.cfg.day_length.0),
            fleet,
            days,
            offset: TimeDelta::ZERO,
            first: true,
            current: Vec::new().into_iter(),
        }
    }

    /// Serializes generated days as a contact trace (for persistence and
    /// interchange through `dtn-trace`).
    pub fn to_trace(days: &[DayTrace]) -> Trace {
        let mut records = Vec::new();
        for d in days {
            for &w in d.schedule.windows() {
                let mut r = ContactRecord::from(w);
                r.day = d.day;
                records.push(Record::Contact(r));
            }
        }
        Trace::new(records)
    }
}

/// Lazy multi-day window stream built by [`DieselNet::stream_days`].
#[derive(Debug)]
pub struct DayWindowStream {
    fleet: Arc<DieselNet>,
    days: std::ops::Range<u32>,
    day_length: TimeDelta,
    offset: TimeDelta,
    first: bool,
    current: std::vec::IntoIter<ContactWindow>,
}

impl Iterator for DayWindowStream {
    type Item = ContactWindow;

    fn next(&mut self) -> Option<ContactWindow> {
        loop {
            if let Some(w) = self.current.next() {
                return Some(w.shifted(self.offset));
            }
            let day = self.days.next()?;
            if self.first {
                self.first = false;
            } else {
                self.offset = self.offset + self.day_length;
            }
            let windows: Vec<ContactWindow> =
                self.fleet.generate_day(day).schedule.windows().to_vec();
            self.current = windows.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> DieselNet {
        DieselNet::new(DieselNetConfig::default(), 42)
    }

    #[test]
    fn compiled_day_replays_the_schedule_exactly() {
        let f = fleet();
        let schedule = f.generate_day(3).schedule;
        let plan = Arc::new(f.compile_day(3));
        let replayed: Vec<ContactWindow> = plan.stream().collect();
        assert_eq!(replayed, schedule.windows());
        assert_eq!(plan.window_count(), schedule.len() as u64);
    }

    #[test]
    fn daily_meeting_count_is_calibrated() {
        let f = fleet();
        let days = f.generate_days(30);
        let avg = days.iter().map(|d| d.schedule.len() as f64).sum::<f64>() / days.len() as f64;
        assert!(
            (90.0..220.0).contains(&avg),
            "avg meetings/day {avg} outside calibration band"
        );
    }

    #[test]
    fn on_road_counts_are_plausible() {
        let f = fleet();
        for d in f.generate_days(20) {
            assert!(
                (11..=26).contains(&d.on_road.len()),
                "day {} has {} buses",
                d.day,
                d.on_road.len()
            );
            // Every bus id is valid and unique.
            let mut ids = d.on_road.clone();
            ids.dedup();
            assert_eq!(ids.len(), d.on_road.len());
            assert!(ids.iter().all(|n| n.index() < 40));
            // Every contact endpoint is on the road.
            for c in d.schedule.windows() {
                assert!(d.on_road.contains(&c.a) && d.on_road.contains(&c.b));
            }
        }
    }

    #[test]
    fn far_pairs_rarely_meet() {
        // Per *pair*, same-route buses must meet far more often than
        // distant-route buses (far pairs outnumber same pairs ~9:1, so
        // totals are not comparable).
        let f = fleet();
        let days = f.generate_days(40);
        let (mut same, mut far) = (0usize, 0usize);
        let (mut same_pairs, mut far_pairs) = (0usize, 0usize);
        let mut counted = std::collections::BTreeSet::new();
        for d in &days {
            for (i, &a) in d.on_road.iter().enumerate() {
                for &b in &d.on_road[(i + 1)..] {
                    let dist = {
                        let (ra, rb) = (f.route_of(a), f.route_of(b));
                        let d = ra.abs_diff(rb);
                        d.min(10 - d)
                    };
                    if counted.insert((d.day, a, b)) {
                        if dist == 0 {
                            same_pairs += 1;
                        } else if dist >= 2 {
                            far_pairs += 1;
                        }
                    }
                }
            }
            for c in d.schedule.windows() {
                let dist = {
                    let (ra, rb) = (f.route_of(c.a), f.route_of(c.b));
                    let d = ra.abs_diff(rb);
                    d.min(10 - d)
                };
                if dist == 0 {
                    same += 1;
                } else if dist >= 2 {
                    far += 1;
                }
            }
        }
        let same_rate = same as f64 / same_pairs.max(1) as f64;
        let far_rate = far as f64 / far_pairs.max(1) as f64;
        assert!(
            same_rate > 3.0 * far_rate,
            "per-pair: same {same_rate:.2}/day vs far {far_rate:.2}/day"
        );
    }

    #[test]
    fn some_pairs_never_meet_directly() {
        // The structural property motivating h-hop meeting estimation.
        let f = fleet();
        let days = f.generate_days(20);
        let mut met = std::collections::BTreeSet::new();
        let mut seen_on_road = std::collections::BTreeSet::new();
        for d in &days {
            for &n in &d.on_road {
                seen_on_road.insert(n.0);
            }
            for c in d.schedule.windows() {
                met.insert((c.a.0.min(c.b.0), c.a.0.max(c.b.0)));
            }
        }
        let on_road: Vec<u32> = seen_on_road.into_iter().collect();
        let mut never = 0usize;
        for (i, &a) in on_road.iter().enumerate() {
            for &b in &on_road[(i + 1)..] {
                if !met.contains(&(a.min(b), a.max(b))) {
                    never += 1;
                }
            }
        }
        assert!(never > 0, "expected some pairs to never meet directly");
    }

    #[test]
    fn opportunity_sizes_are_heavy_tailed() {
        let f = fleet();
        let days = f.generate_days(20);
        let sizes: Vec<f64> = days
            .iter()
            .flat_map(|d| d.schedule.windows().iter().map(|c| c.capacity() as f64))
            .collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(
            (0.5e6..5.0e6).contains(&mean),
            "mean opportunity {mean} outside band"
        );
        let max = sizes.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max > 4.0 * mean,
            "expected a heavy tail, max {max} mean {mean}"
        );
    }

    #[test]
    fn deterministic_and_independent_days() {
        let a = fleet().generate_day(7);
        let b = fleet().generate_day(7);
        assert_eq!(a, b);
        // Regenerating day 7 does not depend on generating days 0..6.
        let all = fleet().generate_days(8);
        assert_eq!(all[7], a);
        // Different days differ.
        assert_ne!(all[0], all[1]);
    }

    #[test]
    fn route_assignment_is_balanced() {
        let f = fleet();
        let mut per_route = [0usize; 10];
        for b in 0..40 {
            per_route[f.route_of(NodeId(b))] += 1;
        }
        assert!(per_route.iter().all(|&k| k == 4));
    }

    #[test]
    fn durative_fleet_emits_windows() {
        let cfg = DieselNetConfig {
            mean_contact_duration: TimeDelta::from_secs(120),
            ..DieselNetConfig::default()
        };
        let f = DieselNet::new(cfg, 42);
        let d = f.generate_day(3);
        assert!(!d.schedule.is_empty());
        assert!(d.schedule.windows().iter().all(|w| !w.is_instantaneous()));
        let mean_dur = d
            .schedule
            .windows()
            .iter()
            .map(|w| w.duration().as_secs_f64())
            .sum::<f64>()
            / d.schedule.len() as f64;
        assert!(
            (20.0..600.0).contains(&mean_dur),
            "mean window duration {mean_dur}s outside band"
        );
        // Windowed traces round-trip through the duration-aware format.
        let trace = DieselNet::to_trace(std::slice::from_ref(&d));
        let parsed = dtn_trace::parse(&trace.to_string_format()).unwrap();
        let rebuilt = Schedule::from_records(&parsed.contacts_on(3));
        assert_eq!(rebuilt, d.schedule);
    }

    #[test]
    fn default_fleet_is_instantaneous() {
        let f = fleet();
        let d = f.generate_day(0);
        assert!(d.schedule.windows().iter().all(|w| w.is_instantaneous()));
    }

    #[test]
    fn stream_days_matches_materialized_concatenation() {
        let f = Arc::new(fleet());
        let streamed: Vec<ContactWindow> = DieselNet::stream_days(Arc::clone(&f), 3..7).collect();
        // The materialized counterpart: every day generated, shifted onto
        // the common timeline, stable-sorted — the TraceLab assembly.
        let mut expected = Vec::new();
        for (k, day) in (3..7u32).enumerate() {
            let offset = TimeDelta(f.config().day_length.0 * k as u64);
            for w in f.generate_day(day).schedule.windows() {
                expected.push(w.shifted(offset));
            }
        }
        assert_eq!(streamed, Schedule::new(expected.clone()).windows());
        assert_eq!(streamed, expected, "days concatenate already sorted");
        assert!(!streamed.is_empty());
        assert!(streamed.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn trace_round_trip() {
        let f = fleet();
        let days = f.generate_days(3);
        let trace = DieselNet::to_trace(&days);
        let text = trace.to_string_format();
        let parsed = dtn_trace::parse(&text).unwrap();
        assert_eq!(trace, parsed);
        assert_eq!(parsed.days().len(), 3);
        // Schedules rebuilt from the trace match the originals.
        for d in &days {
            let rebuilt = Schedule::from_records(&parsed.contacts_on(d.day));
            assert_eq!(&rebuilt, &d.schedule);
        }
    }
}
