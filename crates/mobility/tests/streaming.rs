//! Property tests for the streaming mobility sources: every lazy stream
//! must yield *exactly* the window sequence of its materialized
//! [`Schedule`] counterpart for a fixed `(seed, run)`, stay in
//! nondecreasing start order, and be insensitive to how pulls interleave
//! with other sources (substream independence).

use dtn_mobility::{DieselNet, DieselNetConfig, PowerLaw, ScaleFleet, UniformExponential};
use dtn_sim::{ContactWindow, Time, TimeDelta};
use proptest::prelude::*;
use std::sync::Arc;

fn exp_model(nodes: usize, mean_s: u64) -> UniformExponential {
    UniformExponential {
        nodes,
        mean_inter_meeting: TimeDelta::from_secs(mean_s),
        opportunity_bytes: 50_000,
    }
}

/// Pulls `a` and `b` alternately according to `pattern` (true = pull from
/// `a`), then drains both; returns the two sequences.
fn interleave<I: Iterator<Item = ContactWindow>>(
    mut a: I,
    mut b: I,
    pattern: &[bool],
) -> (Vec<ContactWindow>, Vec<ContactWindow>) {
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    for &take_a in pattern {
        if take_a {
            out_a.extend(a.next());
        } else {
            out_b.extend(b.next());
        }
    }
    out_a.extend(a);
    out_b.extend(b);
    (out_a, out_b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exponential_stream_equals_materialized(
        nodes in 2usize..8,
        mean_s in 20u64..200,
        horizon_s in 100u64..1200,
        duration_s in 0u64..90,
        seed in 0u64..1000,
        run in 0u64..4,
    ) {
        let model = exp_model(nodes, mean_s);
        let horizon = Time::from_secs(horizon_s);
        let duration = TimeDelta::from_secs(duration_s);
        let streamed: Vec<ContactWindow> =
            model.stream(horizon, duration, seed, run).collect();
        let materialized = model.stream(horizon, duration, seed, run).materialize();
        prop_assert_eq!(&streamed[..], materialized.windows());
        prop_assert!(streamed.windows(2).all(|w| w[0].start <= w[1].start));
        prop_assert!(streamed.iter().all(|w| w.end <= horizon && w.a != w.b));
    }

    #[test]
    fn powerlaw_stream_equals_materialized(
        nodes in 2usize..8,
        base_s in 30u64..300,
        horizon_s in 100u64..1200,
        seed in 0u64..1000,
        run in 0u64..4,
    ) {
        let model = PowerLaw {
            nodes,
            base_mean: TimeDelta::from_secs(base_s),
            opportunity_bytes: 1024,
        };
        let horizon = Time::from_secs(horizon_s);
        let streamed: Vec<ContactWindow> =
            model.stream(horizon, TimeDelta::ZERO, seed, run).collect();
        let materialized = model.stream(horizon, TimeDelta::ZERO, seed, run).materialize();
        prop_assert_eq!(&streamed[..], materialized.windows());
        prop_assert!(streamed.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn interleaved_pulls_do_not_perturb_streams(
        pattern in prop::collection::vec(any::<bool>(), 0..200),
        seed in 0u64..1000,
    ) {
        // Two runs of the same model share nothing: however their pulls
        // interleave, each yields its own straight-collected sequence.
        let model = exp_model(5, 40);
        let horizon = Time::from_secs(600);
        let expect_a: Vec<ContactWindow> =
            model.stream(horizon, TimeDelta::ZERO, seed, 0).collect();
        let expect_b: Vec<ContactWindow> =
            model.stream(horizon, TimeDelta::ZERO, seed, 1).collect();
        let (got_a, got_b) = interleave(
            model.stream(horizon, TimeDelta::ZERO, seed, 0),
            model.stream(horizon, TimeDelta::ZERO, seed, 1),
            &pattern,
        );
        prop_assert_eq!(got_a, expect_a);
        prop_assert_eq!(got_b, expect_b);
    }

    #[test]
    fn dieselnet_day_stream_equals_materialized_concatenation(
        seed in 0u64..500,
        first_day in 0u32..10,
        days in 1u32..5,
    ) {
        let fleet = Arc::new(DieselNet::new(DieselNetConfig::default(), seed));
        let range = first_day..(first_day + days);
        let streamed: Vec<ContactWindow> =
            DieselNet::stream_days(Arc::clone(&fleet), range.clone()).collect();
        let mut expected = Vec::new();
        for (k, day) in range.enumerate() {
            let offset = TimeDelta(fleet.config().day_length.0 * k as u64);
            for w in fleet.generate_day(day).schedule.windows() {
                expected.push(w.shifted(offset));
            }
        }
        prop_assert_eq!(streamed, expected);
    }

    #[test]
    fn scale_stream_is_a_stable_prefix_order(
        seed in 0u64..1000,
        run in 0u64..4,
        k in 1usize..400,
    ) {
        let fleet = ScaleFleet {
            nodes: 10_000,
            contacts: 2_000,
            opportunity_bytes: 4096,
            contact_duration: TimeDelta::ZERO,
            horizon: Time::from_secs(1800),
            hubs: 32,
            hub_bias: 0.3,
        };
        // Pulling a prefix never changes what the prefix contains.
        let full: Vec<ContactWindow> = fleet.contact_stream(seed, run).collect();
        let prefix: Vec<ContactWindow> =
            fleet.contact_stream(seed, run).take(k.min(full.len())).collect();
        prop_assert_eq!(&full[..prefix.len()], &prefix[..]);
        prop_assert!(full.windows(2).all(|w| w[0].start <= w[1].start));
    }
}
